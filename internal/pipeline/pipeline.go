// Package pipeline is the single plan → params → simulate engine
// behind every entry point of the repository: the HTTP service
// (internal/server), the library facade (package dpm), the experiment
// harness (internal/experiments) and the command-line tools. It wraps
// the paper's three algorithms — the §4.1 initial power allocation
// (alloc.ComputeContext), the §4.2 operating-point table
// (params.BuildTable) and the §4.3 closed-loop manager simulations
// (dpm.SimulateContext, machine.Run) — behind one validated,
// context-aware surface, so the wiring that used to be copied into
// five call sites lives in exactly one place.
//
// Every specification is validated by internal/scenario before any
// work runs, and the hot Algorithm 3 replan path reuses the manager's
// scratch buffers (no per-slot allocation in steady state; see
// dpm.Manager and dpm.SimConfig.OmitPlanSnapshots). PlanMany fans a
// batch of plan specifications across a bounded worker pool — the
// engine under dpmd's POST /v1/batch.
package pipeline

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"dpm/internal/alloc"
	"dpm/internal/dpm"
	"dpm/internal/faults"
	"dpm/internal/machine"
	"dpm/internal/obs"
	"dpm/internal/params"
	"dpm/internal/scenario"
	"dpm/internal/schedule"
	"dpm/internal/trace"
)

// Span names recorded by the engine (internal/obs). Every entry point
// wraps its phases in these spans; with no Recorder on the context
// the calls collapse to the nil fast path. The per-iteration
// Algorithm 1 spans ("alloc.iteration") and the Algorithm 2 memoizer
// spans ("params.table", "params.BuildTable") are recorded by
// internal/alloc and internal/params respectively.
const (
	spanValidate = "pipeline.validate"
	spanPlan     = "pipeline.plan"
	spanParams   = "pipeline.params"
	spanReplay   = "pipeline.replay"
	spanSimulate = "pipeline.simulate"
	spanEvents   = "pipeline.events"
	spanMachine  = "pipeline.machine"
)

// PlanSpec asks for an Algorithm 1 power allocation.
type PlanSpec struct {
	// Scenario is the planning environment: charging and usage
	// schedules, optional weight, battery band.
	Scenario trace.Scenario
	// Strategy selects the arc-reshaping flavor.
	Strategy alloc.AdjustStrategy
	// MaxIterations bounds the Algorithm 1 driver (0 = default 16).
	MaxIterations int
	// Margin keeps a fraction of the battery band clear at each end
	// (0 ≤ margin < 0.5).
	Margin float64
}

// Validate applies the canonical input bounds without running the
// plan. All failures are *scenario.Error values.
func (p PlanSpec) Validate() error {
	if err := scenario.Validate(p.Scenario); err != nil {
		return err
	}
	if p.MaxIterations < 0 || p.MaxIterations > scenario.MaxIterationsLimit {
		return scenario.Errorf("maxIterations %d outside [0, %d]", p.MaxIterations, scenario.MaxIterationsLimit)
	}
	if !scenario.IsFinite(p.Margin) || p.Margin < 0 || p.Margin >= 0.5 {
		return scenario.Errorf("margin %g outside [0, 0.5)", p.Margin)
	}
	return nil
}

// Plan validates the spec and runs Algorithm 1 (§4.1): WPUF →
// balancing → feasible per-slot power allocation. ctx is polled
// between driver iterations.
func Plan(ctx context.Context, spec PlanSpec) (*alloc.Result, error) {
	ctx, span := obs.StartSpan(ctx, spanPlan)
	defer span.End()
	_, vspan := obs.StartSpan(ctx, spanValidate)
	err := spec.Validate()
	vspan.End()
	if err != nil {
		return nil, err
	}
	return alloc.ComputeContext(ctx, alloc.Inputs{
		Charging:      spec.Scenario.Charging,
		EventRate:     spec.Scenario.Usage,
		Weight:        spec.Scenario.Weight,
		CapacityMax:   spec.Scenario.CapacityMax,
		CapacityMin:   spec.Scenario.CapacityMin,
		InitialCharge: spec.Scenario.InitialCharge,
		MaxIterations: spec.MaxIterations,
		Margin:        spec.Margin,
		Strategy:      spec.Strategy,
	})
}

// Table validates a hardware block (nil means the PAMA defaults) and
// returns the Algorithm 2 operating-point table plus the params
// configuration it came from. The table comes from the process-wide
// memoizer (params.SharedTable): the enumerate + Pareto-prune step
// runs once per distinct hardware block, and every caller walks the
// same immutable table. ctx carries telemetry (the memoizer records a
// "params.table" span with its hit/miss disposition) and cancels a
// coalesced build wait.
func Table(ctx context.Context, hw *scenario.Hardware) (*params.Table, params.Config, error) {
	ctx, span := obs.StartSpan(ctx, spanParams)
	defer span.End()
	cfg, err := hw.WithDefaults().ParamsConfig()
	if err != nil {
		return nil, params.Config{}, err
	}
	tbl, _, err := params.SharedTableContext(ctx, cfg)
	if err != nil {
		return nil, params.Config{}, err
	}
	return tbl, cfg, nil
}

// ManagerConfig assembles the dpm manager configuration every
// pipeline caller shares. It is pure assembly — dpm.New re-validates
// the inputs through internal/scenario, so no error can be deferred
// past construction.
func ManagerConfig(s trace.Scenario, pcfg params.Config, policy dpm.RedistributePolicy) dpm.Config {
	return dpm.Config{
		Charging:      s.Charging,
		EventRate:     s.Usage,
		Weight:        s.Weight,
		CapacityMax:   s.CapacityMax,
		CapacityMin:   s.CapacityMin,
		InitialCharge: s.InitialCharge,
		Params:        pcfg,
		Policy:        policy,
	}
}

// SlotReport is one completed slot's measured energies.
type SlotReport struct {
	// UsedJ is the energy the system actually consumed in joules.
	UsedJ float64
	// SuppliedJ is the energy the source actually delivered.
	SuppliedJ float64
}

// ValidateReports applies the slot-report bounds shared by the
// stateless /v1/replan path (Replay) and the fleet tick path: at
// least one report, at most scenario.MaxSlots, every energy finite
// and within [0, scenario.MaxEnergyJ].
func ValidateReports(reports []SlotReport) error {
	if len(reports) == 0 {
		return scenario.Errorf("at least one slot report is required")
	}
	if len(reports) > scenario.MaxSlots {
		return scenario.Errorf("%d slot reports exceed the limit of %d", len(reports), scenario.MaxSlots)
	}
	for i, rep := range reports {
		if !scenario.IsFinite(rep.UsedJ) || rep.UsedJ < 0 || rep.UsedJ > scenario.MaxEnergyJ ||
			!scenario.IsFinite(rep.SuppliedJ) || rep.SuppliedJ < 0 || rep.SuppliedJ > scenario.MaxEnergyJ {
			return scenario.Errorf("slots[%d] energies (%g, %g) outside [0, %g] joules",
				i, rep.UsedJ, rep.SuppliedJ, float64(scenario.MaxEnergyJ))
		}
	}
	return nil
}

// Replay runs the Algorithm 3 runtime update (§4.3): build a manager
// for the scenario, restore the optional checkpoint, and apply the
// reported planned-vs-actual slot energies oldest first. The returned
// manager carries the redistributed plan and the next checkpoint.
// ctx carries telemetry only — the replay itself is a short,
// non-blocking computation. The manager plans with the default
// (paper) backend; ReplayWith selects an alternative.
func Replay(ctx context.Context, s trace.Scenario, pcfg params.Config, policy dpm.RedistributePolicy, state *dpm.State, reports []SlotReport) (*dpm.Manager, error) {
	return ReplayWith(ctx, DefaultStrategy, s, pcfg, policy, state, reports)
}

// SimSpec describes a closed-loop analytic simulation: the manager
// plans with the scenario's expected schedules while the environment
// delivers the actual ones.
type SimSpec struct {
	// Scenario is the planning environment.
	Scenario trace.Scenario
	// Planner names the strategy backend the manager's initial plan
	// comes from ("" = the paper's Algorithm 1). Runtime Algorithm 3
	// redistribution is unchanged either way.
	Planner string
	// Params is the Algorithm 2 hardware configuration.
	Params params.Config
	// Policy selects the Algorithm 3 redistribution flavor.
	Policy dpm.RedistributePolicy
	// Battery selects the intra-slot battery semantics.
	Battery dpm.BatteryModel
	// ActualCharging is what the source really delivers; nil means
	// the expectation holds.
	ActualCharging *schedule.Grid
	// Periods is the horizon in charging periods.
	Periods int
	// SyncCharge copies the real battery charge into the manager
	// after every slot (the PAMA power-measurement board).
	SyncCharge bool
	// DisableSlotGuards reproduces the paper's guard-free planner.
	DisableSlotGuards bool
	// PlanSnapshots records the full per-period plan after every slot
	// (the paper's Tables 3/5 columns). Off by default: the snapshot
	// is the one per-slot allocation left on the hot path.
	PlanSnapshots bool
}

// Simulate validates the spec and runs the analytic closed-loop
// simulation. ctx is polled once per simulated slot.
func Simulate(ctx context.Context, spec SimSpec) (*dpm.SimResult, error) {
	ctx, span := obs.StartSpan(ctx, spanSimulate)
	defer span.End()
	if spec.ActualCharging != nil {
		_, vspan := obs.StartSpan(ctx, spanValidate)
		err := scenario.ValidateGrid("actualCharging", spec.ActualCharging, true)
		vspan.End()
		if err != nil {
			return nil, err
		}
	}
	span.SetAttr("periods", spec.Periods)
	cfg := ManagerConfig(spec.Scenario, spec.Params, spec.Policy)
	cfg.DisableSlotGuards = spec.DisableSlotGuards
	if err := injectStrategyPlan(ctx, spec.Planner, spec.Scenario, &cfg); err != nil {
		return nil, err
	}
	return dpm.SimulateContext(ctx, dpm.SimConfig{
		Battery:           spec.Battery,
		Manager:           cfg,
		ActualCharging:    spec.ActualCharging,
		Periods:           spec.Periods,
		SyncCharge:        spec.SyncCharge,
		OmitPlanSnapshots: !spec.PlanSnapshots,
	})
}

// MachineSpec describes a discrete-event PAMA board simulation driven
// by a Poisson event trace.
type MachineSpec struct {
	// Scenario is the planning environment.
	Scenario trace.Scenario
	// Planner names the strategy backend the manager's initial plan
	// comes from ("" = the paper's Algorithm 1).
	Planner string
	// Params is the Algorithm 2 hardware configuration.
	Params params.Config
	// Policy selects the Algorithm 3 redistribution flavor.
	Policy dpm.RedistributePolicy
	// ActualCharging is what the source really delivers; nil means
	// the expectation holds.
	ActualCharging *schedule.Grid
	// Periods is the horizon in charging periods.
	Periods int
	// EventScale converts scheduled usage watts into an event rate
	// (events/s per W); Seed makes the trace reproducible.
	EventScale float64
	Seed       int64
	// MaxExpectedEvents, when positive, rejects a spec whose expected
	// event count (peak rate × scale × horizon) exceeds it before any
	// trace is drawn, and hard-caps the generator at twice that (slack
	// for Poisson fluctuation). Zero trusts the caller.
	MaxExpectedEvents int
	// ExecuteDSP runs the FORTE DSP workload on each capture;
	// GangScheduled spreads each capture across all active workers.
	ExecuteDSP    bool
	GangScheduled bool
	// Faults injects the optional seeded fault plan;
	// DisableDegradedReplan ablates the recovery re-plan.
	Faults                *faults.Plan
	DisableDegradedReplan bool
}

// SimulateMachine validates the spec, draws the event trace, and runs
// the board simulation. ctx is honored while drawing the trace and
// between simulated events.
func SimulateMachine(ctx context.Context, spec MachineSpec) (*machine.Result, error) {
	ctx, span := obs.StartSpan(ctx, spanMachine)
	defer span.End()
	_, vspan := obs.StartSpan(ctx, spanValidate)
	err := scenario.Validate(spec.Scenario)
	if err == nil && spec.ActualCharging != nil {
		err = scenario.ValidateGrid("actualCharging", spec.ActualCharging, true)
	}
	vspan.End()
	if err != nil {
		return nil, err
	}
	if !scenario.IsFinite(spec.EventScale) || spec.EventScale < 0 {
		return nil, scenario.Errorf("eventScale %g must be non-negative", spec.EventScale)
	}
	horizon := float64(spec.Periods) * spec.Scenario.Charging.Period()
	maxEvents := 0
	if spec.MaxExpectedEvents > 0 {
		// The per-magnitude input bounds still admit an enormous
		// rate × horizon product, and the Poisson thinning loop iterates
		// ~maxRate·scale·horizon times while materializing every
		// accepted arrival. Bound the expected event count before
		// drawing anything so a hostile scenario is a cheap validation
		// error, not a wedged worker.
		maxRate := 0.0
		for _, v := range spec.Scenario.Usage.Values {
			if v > maxRate {
				maxRate = v
			}
		}
		if expected := maxRate * spec.EventScale * horizon; expected > float64(spec.MaxExpectedEvents) {
			return nil, scenario.Errorf("scenario implies ~%.3g events over the %g s horizon; the limit is %d — lower the usage rates, eventScale or periods",
				expected, horizon, spec.MaxExpectedEvents)
		}
		maxEvents = 2 * spec.MaxExpectedEvents
	}
	_, espan := obs.StartSpan(ctx, spanEvents)
	events, err := trace.PoissonEventsBounded(ctx, spec.Scenario.Usage, spec.EventScale, horizon, spec.Seed, maxEvents)
	espan.SetAttr("events", len(events))
	espan.End()
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return nil, asValidation(err)
	}
	mcfg := ManagerConfig(spec.Scenario, spec.Params, spec.Policy)
	if err := injectStrategyPlan(ctx, spec.Planner, spec.Scenario, &mcfg); err != nil {
		return nil, err
	}
	board, err := machine.New(machine.Config{
		Manager:               mcfg,
		ActualCharging:        spec.ActualCharging,
		Events:                events,
		Periods:               spec.Periods,
		ExecuteDSP:            spec.ExecuteDSP,
		GangScheduled:         spec.GangScheduled,
		Faults:                spec.Faults,
		DisableDegradedReplan: spec.DisableDegradedReplan,
	})
	if err != nil {
		return nil, asValidation(err)
	}
	return board.RunContext(ctx)
}

// asValidation classifies a configuration-stage failure as a
// validation error — the transport layers' client-error channel —
// preserving errors internal/scenario already classified.
func asValidation(err error) error {
	var ve *scenario.Error
	if errors.As(err, &ve) {
		return err
	}
	return scenario.Errorf("%v", err)
}

// ForEach runs fn for every index in [0, n) across a bounded pool of
// goroutines and waits for all of them. parallelism <= 0 means
// GOMAXPROCS. Every index runs even after ctx is cancelled — fn is
// expected to observe ctx and fail fast — so callers always get a
// fully populated result set.
func ForEach(ctx context.Context, n, parallelism int, fn func(ctx context.Context, i int)) {
	if n <= 0 {
		return
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(ctx, i)
		}(i)
	}
	wg.Wait()
}

// PlanOutcome is one PlanMany item's result: exactly one of Result
// and Err is set.
type PlanOutcome struct {
	// Result is the computed allocation.
	Result *alloc.Result
	// Err is the item's validation or planning failure.
	Err error
}

// PlanMany plans every spec across a bounded worker pool and returns
// the outcomes in input order. One spec's failure does not disturb
// the others — batch callers (dpmd's /v1/batch) report per-item
// status. parallelism <= 0 means GOMAXPROCS.
func PlanMany(ctx context.Context, specs []PlanSpec, parallelism int) []PlanOutcome {
	out := make([]PlanOutcome, len(specs))
	ForEach(ctx, len(specs), parallelism, func(ctx context.Context, i int) {
		res, err := Plan(ctx, specs[i])
		out[i] = PlanOutcome{Result: res, Err: err}
	})
	return out
}
