package pipeline

// Planner strategy registry ----------------------------------------
//
// The paper's Algorithm 1/2 path is one way to turn a scenario into a
// per-slot power plan; PAPERS.md names directly comparable
// alternatives (YDS-style speed scaling with a recharging source,
// power-aware makespan scheduling). Strategy puts them all behind one
// interface so every entry point — /v1/plan?strategy=, the facade,
// the experiment harness, fleet registration, the CLIs — resolves a
// backend by name and gets back the same alloc.Result shape the rest
// of the stack (params selection, simulation, replay) consumes
// unchanged.
//
// Registration follows the database/sql-driver pattern: this package
// registers the default "paper" backend in init, internal/strategy
// registers the alternatives in its init, and callers that want the
// full set blank-import internal/strategy. The registry is
// append-only and concurrency-safe; duplicate names panic at init
// time.

import (
	"context"
	"sort"
	"strings"
	"sync"

	"dpm/internal/alloc"
	"dpm/internal/dpm"
	"dpm/internal/obs"
	"dpm/internal/params"
	"dpm/internal/scenario"
	"dpm/internal/trace"
)

// DefaultStrategy names the paper's Algorithm 1/2 planner — the
// backend an empty strategy selector resolves to. Requests that do
// not name a strategy are canonically keyed and rendered as if the
// field were absent, so the default path's cache keys and wire bytes
// are pinned across the registry's growth.
const DefaultStrategy = "paper"

// Strategy is a pluggable planner backend: anything that turns a
// validated PlanSpec into a per-slot power allocation with a battery
// trajectory. Implementations must be safe for concurrent use and
// must validate the spec themselves (Plan is called directly by
// PlanWith).
type Strategy interface {
	// Name is the registry key and the wire selector
	// (?strategy=<name>). Lowercase, stable, never empty.
	Name() string
	// Describe is a one-line human description for listings.
	Describe() string
	// Capabilities reports which PlanSpec knobs the backend honors.
	Capabilities() Capabilities
	// Plan computes the allocation. The result's Allocation grid must
	// match the scenario's charging grid (step and length), and
	// Trajectory/Feasible must be populated (alloc.ResultFromPlan
	// builds both from a raw plan).
	Plan(ctx context.Context, spec PlanSpec) (*alloc.Result, error)
}

// Capabilities reports which PlanSpec knobs a backend honors, so
// callers and reports can tell why two backends given the same spec
// behave differently.
type Capabilities struct {
	// Iterative reports that the backend runs an iterative driver and
	// honors PlanSpec.MaxIterations and PlanSpec.Strategy (the
	// Algorithm 1 arc-reshaping flavor).
	Iterative bool
	// DemandShaped reports that the allocation follows the scenario's
	// weighted usage shape. Backends that optimize a pure energy
	// objective (YDS) use only the supply schedule and the demand
	// total.
	DemandShaped bool
}

var (
	strategyMu sync.RWMutex
	strategies = map[string]Strategy{}
)

// RegisterStrategy adds a backend to the registry. It panics on an
// empty name or a duplicate — both are programmer errors at init
// time, exactly like database/sql.Register.
func RegisterStrategy(s Strategy) {
	name := s.Name()
	if name == "" {
		panic("pipeline: RegisterStrategy with empty name")
	}
	strategyMu.Lock()
	defer strategyMu.Unlock()
	if _, dup := strategies[name]; dup {
		panic("pipeline: RegisterStrategy called twice for strategy " + name)
	}
	strategies[name] = s
}

// Strategies returns the registered backend names, sorted.
func Strategies() []string {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	names := make([]string, 0, len(strategies))
	for name := range strategies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// StrategyByName resolves a backend: "" means DefaultStrategy, an
// unknown name is a *scenario.Error listing the registered backends —
// the transport layers' structured-400 channel.
func StrategyByName(name string) (Strategy, error) {
	if name == "" {
		name = DefaultStrategy
	}
	strategyMu.RLock()
	s := strategies[name]
	strategyMu.RUnlock()
	if s == nil {
		return nil, scenario.Errorf("unknown planner strategy %q (registered: %s)",
			name, strings.Join(Strategies(), ", "))
	}
	return s, nil
}

// PlanWith resolves the named backend and plans the spec with it —
// the strategy-aware form of Plan every selector-carrying entry point
// calls.
func PlanWith(ctx context.Context, strategy string, spec PlanSpec) (*alloc.Result, error) {
	s, err := StrategyByName(strategy)
	if err != nil {
		return nil, err
	}
	return s.Plan(ctx, spec)
}

// NewManager builds a dpm.Manager whose initial plan comes from the
// named backend. The default strategy constructs exactly as dpm.New
// always has (Algorithm 1 inside the manager); an alternative backend
// plans first and injects its allocation via dpm.Config.InitialPlan.
// Runtime behavior downstream of construction — Algorithm 3
// redistribution, checkpointing, degraded-mode Replan — is identical
// either way.
func NewManager(ctx context.Context, strategy string, s trace.Scenario, pcfg params.Config, policy dpm.RedistributePolicy) (*dpm.Manager, error) {
	cfg := ManagerConfig(s, pcfg, policy)
	if err := injectStrategyPlan(ctx, strategy, s, &cfg); err != nil {
		return nil, err
	}
	return dpm.New(cfg)
}

// injectStrategyPlan resolves the named backend and, for a non-paper
// one, plans the scenario and seeds the manager configuration with
// its allocation — the shared strategy hook of the simulation specs.
func injectStrategyPlan(ctx context.Context, strategy string, s trace.Scenario, cfg *dpm.Config) error {
	strat, err := StrategyByName(strategy)
	if err != nil {
		return err
	}
	if strat.Name() == DefaultStrategy {
		return nil
	}
	res, err := strat.Plan(ctx, PlanSpec{Scenario: s})
	if err != nil {
		return err
	}
	cfg.InitialPlan = res.Allocation
	return nil
}

// ReplayWith is Replay with a planner selector: the manager the
// reports replay against starts from the named backend's plan. A
// checkpointed replay (state != nil) overwrites the plan with the
// checkpoint's anyway, so the selector matters for the fresh-start
// case — a device fleet planned by an alternative backend replans
// against that backend's baseline, not the paper's.
func ReplayWith(ctx context.Context, strategy string, s trace.Scenario, pcfg params.Config, policy dpm.RedistributePolicy, state *dpm.State, reports []SlotReport) (*dpm.Manager, error) {
	_, span := obs.StartSpan(ctx, spanReplay)
	defer span.End()
	span.SetAttr("slots", len(reports))
	if err := ValidateReports(reports); err != nil {
		return nil, err
	}
	mgr, err := NewManager(ctx, strategy, s, pcfg, policy)
	if err != nil {
		return nil, err
	}
	if state != nil {
		if err := mgr.Restore(*state); err != nil {
			return nil, err
		}
	}
	for _, rep := range reports {
		mgr.EndSlot(rep.UsedJ, rep.SuppliedJ)
	}
	return mgr, nil
}

// paperStrategy adapts the package's own Plan — the §4.1 WPUF →
// balancing → Algorithm 1 path — to the Strategy interface.
type paperStrategy struct{}

func (paperStrategy) Name() string { return DefaultStrategy }

func (paperStrategy) Describe() string {
	return "the paper's Algorithm 1: demand-shaped allocation with extremum remapping"
}

func (paperStrategy) Capabilities() Capabilities {
	return Capabilities{Iterative: true, DemandShaped: true}
}

func (paperStrategy) Plan(ctx context.Context, spec PlanSpec) (*alloc.Result, error) {
	return Plan(ctx, spec)
}

func init() { RegisterStrategy(paperStrategy{}) }
