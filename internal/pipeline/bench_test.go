// Benchmarks for the shared engine. BENCH_pipeline.json at the repo
// root records the pre-refactor baseline these are compared against;
// the headline number is BenchmarkReplan's allocs/op — the Algorithm 3
// hot path now reuses the manager's scratch buffers.
package pipeline_test

import (
	"context"
	"testing"

	"dpm/internal/dpm"
	"dpm/internal/experiments"
	"dpm/internal/obs"
	"dpm/internal/pipeline"
	"dpm/internal/trace"

	// Register the alternative planner backends for the per-strategy
	// plan benchmarks.
	_ "dpm/internal/strategy"
)

// BenchmarkPipelinePlan measures one validated Algorithm 1 run on
// scenario I (validation + WPUF + balancing + iteration) with no
// telemetry attached — the nil fast path every library caller and the
// experiment harness take. This is the row cmd/benchdiff guards:
// instrumenting the pipeline must not move its allocs/op.
func BenchmarkPipelinePlan(b *testing.B) {
	spec := pipeline.PlanSpec{Scenario: trace.ScenarioI()}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Plan(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinePlanStrategy times one plan per registered backend
// on scenario I through the strategy dispatch (PlanWith). The "paper"
// sub-benchmark prices the dispatch itself against the direct
// BenchmarkPipelinePlan row; "yds" and "bunde" record what the
// alternative planners cost.
func BenchmarkPipelinePlanStrategy(b *testing.B) {
	spec := pipeline.PlanSpec{Scenario: trace.ScenarioI()}
	ctx := context.Background()
	for _, name := range pipeline.Strategies() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pipeline.PlanWith(ctx, name, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelinePlanObserved is the same run with the service's
// always-on telemetry attached: per-stage duration histograms, no span
// tree. The delta against BenchmarkPipelinePlan is what every dpmd
// request pays for /metrics' stage histograms.
func BenchmarkPipelinePlanObserved(b *testing.B) {
	spec := pipeline.PlanSpec{Scenario: trace.ScenarioI()}
	stages := obs.NewHistogramVec("stage_seconds", "bench", "stage", nil)
	ctx := obs.WithRecorder(context.Background(), &obs.Recorder{Stages: stages})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Plan(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinePlanTraced measures the opt-in debug mode: a fresh
// span tree per run, as one X-Dpmd-Trace request costs. Allocation
// here is expected (the tree is materialized); the number exists to
// keep the debug path's cost visible, not to gate it.
func BenchmarkPipelinePlanTraced(b *testing.B) {
	spec := pipeline.PlanSpec{Scenario: trace.ScenarioI()}
	stages := obs.NewHistogramVec("stage_seconds", "bench", "stage", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := &obs.Recorder{Stages: stages, Trace: obs.NewTrace()}
		ctx := obs.WithRecorder(context.Background(), rec)
		if _, err := pipeline.Plan(ctx, spec); err != nil {
			b.Fatal(err)
		}
		if len(rec.Trace.Tree()) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkReplan measures the per-slot Algorithm 3 update alone: a
// long-lived manager absorbing alternating ±10% deviations, the hot
// loop of both the closed-loop simulator and dpmd's /v1/replan. The
// alternating sign keeps the plan oscillating around feasibility so
// redistribute always has real work (a constant sign drains the plan
// into a no-op after a few slots).
func BenchmarkReplan(b *testing.B) {
	s := trace.ScenarioI()
	mgr, err := dpm.New(pipeline.ManagerConfig(s, experiments.PaperParams(), dpm.Proportional))
	if err != nil {
		b.Fatal(err)
	}
	tau := mgr.Tau()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % s.Charging.Len()
		supplied := s.Charging.Values[idx] * tau
		factor := 0.9
		if i%2 == 1 {
			factor = 1.1
		}
		mgr.BeginSlot()
		mgr.EndSlot(s.Usage.Values[idx]*tau*factor+1e-9, supplied)
	}
}

// BenchmarkBatchPlan measures PlanMany over a mixed batch of eight
// specs across a pool of four workers — the engine under
// POST /v1/batch.
func BenchmarkBatchPlan(b *testing.B) {
	specs := make([]pipeline.PlanSpec, 8)
	for i := range specs {
		s := trace.ScenarioI()
		if i%2 == 1 {
			s = trace.ScenarioII()
		}
		specs[i] = pipeline.PlanSpec{Scenario: s, Margin: 0.01 * float64(i)}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := pipeline.PlanMany(ctx, specs, 4)
		for _, o := range out {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
}
