// Tests for the shared plan → params → simulate engine. The test
// package is external so it can borrow the paper constants from
// internal/experiments (which itself imports pipeline).
package pipeline_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"dpm/internal/dpm"
	"dpm/internal/experiments"
	"dpm/internal/pipeline"
	"dpm/internal/scenario"
	"dpm/internal/trace"
)

func TestPlanMatchesLegacyCompute(t *testing.T) {
	for _, s := range trace.Scenarios() {
		res, err := pipeline.Plan(context.Background(), pipeline.PlanSpec{Scenario: s})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if res.Allocation.Len() != s.Charging.Len() {
			t.Errorf("%s: allocation has %d slots, want %d", s.Name, res.Allocation.Len(), s.Charging.Len())
		}
		if !res.Feasible {
			t.Errorf("%s: paper scenario must be feasible", s.Name)
		}
	}
}

func TestPlanValidates(t *testing.T) {
	s := trace.ScenarioI()
	grid := *s.Charging
	grid.Values = append([]float64(nil), s.Charging.Values...)
	grid.Values[0] = math.Inf(1)
	bad := s
	bad.Charging = &grid

	cases := map[string]pipeline.PlanSpec{
		"infinite charging": {Scenario: bad},
		"negative iters":    {Scenario: s, MaxIterations: -1},
		"huge iters":        {Scenario: s, MaxIterations: scenario.MaxIterationsLimit + 1},
		"margin too big":    {Scenario: s, Margin: 0.5},
		"margin nan":        {Scenario: s, Margin: math.NaN()},
	}
	for name, spec := range cases {
		if _, err := pipeline.Plan(context.Background(), spec); err == nil {
			t.Errorf("%s: accepted", name)
		} else {
			var ve *scenario.Error
			if !errors.As(err, &ve) {
				t.Errorf("%s: error %v is not a *scenario.Error", name, err)
			}
		}
	}
}

func TestPlanHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pipeline.Plan(ctx, pipeline.PlanSpec{Scenario: trace.ScenarioI()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestTableDefaultsToPAMA(t *testing.T) {
	tbl, cfg, err := pipeline.Table(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Points()) == 0 {
		t.Fatal("empty operating-point table")
	}
	if cfg.MaxProcessors != 7 {
		t.Errorf("default worker count %d, want the PAMA 7", cfg.MaxProcessors)
	}
}

func TestReplayAppliesReports(t *testing.T) {
	s := trace.ScenarioI()
	pcfg := experiments.PaperParams()
	tau := s.Charging.Step
	reports := []pipeline.SlotReport{
		{UsedJ: s.Usage.Values[0] * tau, SuppliedJ: s.Charging.Values[0] * tau},
		{UsedJ: s.Usage.Values[1] * tau * 1.2, SuppliedJ: s.Charging.Values[1] * tau},
	}
	mgr, err := pipeline.Replay(context.Background(), s, pcfg, dpm.Proportional, nil, reports)
	if err != nil {
		t.Fatal(err)
	}
	if mgr.Slot() != len(reports)%mgr.Slots() {
		t.Errorf("manager at slot %d after %d reports", mgr.Slot(), len(reports))
	}

	// Restoring the checkpoint and replaying one more slot must
	// continue from where the first replay stopped.
	state := mgr.Checkpoint()
	next, err := pipeline.Replay(context.Background(), s, pcfg, dpm.Proportional, &state,
		[]pipeline.SlotReport{{UsedJ: 1, SuppliedJ: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if next.Slot() != (mgr.Slot()+1)%mgr.Slots() {
		t.Errorf("restored manager at slot %d, want %d", next.Slot(), (mgr.Slot()+1)%mgr.Slots())
	}
}

func TestReplayValidatesReports(t *testing.T) {
	s := trace.ScenarioI()
	pcfg := experiments.PaperParams()
	if _, err := pipeline.Replay(context.Background(), s, pcfg, dpm.Proportional, nil, nil); err == nil {
		t.Error("empty report list accepted")
	}
	bad := []pipeline.SlotReport{{UsedJ: math.NaN(), SuppliedJ: 0}}
	if _, err := pipeline.Replay(context.Background(), s, pcfg, dpm.Proportional, nil, bad); err == nil {
		t.Error("NaN slot energy accepted")
	}
	huge := make([]pipeline.SlotReport, scenario.MaxSlots+1)
	if _, err := pipeline.Replay(context.Background(), s, pcfg, dpm.Proportional, nil, huge); err == nil {
		t.Error("oversized report list accepted")
	}
}

func TestSimulateMatchesDirectCall(t *testing.T) {
	s := trace.ScenarioII()
	got, err := pipeline.Simulate(context.Background(), pipeline.SimSpec{
		Scenario:   s,
		Params:     experiments.PaperParams(),
		Periods:    2,
		SyncCharge: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := dpm.Simulate(dpm.SimConfig{
		Manager:           experiments.ManagerConfig(s),
		Periods:           2,
		SyncCharge:        true,
		OmitPlanSnapshots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Battery != want.Battery {
		t.Errorf("battery accounting diverged: %+v vs %+v", got.Battery, want.Battery)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("record count %d vs %d", len(got.Records), len(want.Records))
	}
	for i := range got.Records {
		if got.Records[i].Plan != nil {
			t.Fatalf("slot %d carries a plan snapshot without PlanSnapshots", i)
		}
	}
}

func TestSimulateValidatesActualCharging(t *testing.T) {
	s := trace.ScenarioI()
	grid := *s.Charging
	grid.Values = append([]float64(nil), s.Charging.Values...)
	grid.Values[3] = -1
	_, err := pipeline.Simulate(context.Background(), pipeline.SimSpec{
		Scenario:       s,
		Params:         experiments.PaperParams(),
		ActualCharging: &grid,
		Periods:        1,
	})
	var ve *scenario.Error
	if !errors.As(err, &ve) {
		t.Fatalf("want a validation error for negative actual charging, got %v", err)
	}
}

func TestSimulateMachineRunsAndBounds(t *testing.T) {
	s := trace.ScenarioI()
	res, err := pipeline.SimulateMachine(context.Background(), pipeline.MachineSpec{
		Scenario:          s,
		Params:            experiments.PaperParams(),
		Periods:           1,
		EventScale:        0.05,
		Seed:              7,
		MaxExpectedEvents: scenario.MaxMachineEvents,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsArrived == 0 {
		t.Error("no events arrived")
	}

	// A tiny expected-events budget must reject the spec before any
	// trace is drawn.
	_, err = pipeline.SimulateMachine(context.Background(), pipeline.MachineSpec{
		Scenario:          s,
		Params:            experiments.PaperParams(),
		Periods:           1,
		EventScale:        0.05,
		MaxExpectedEvents: 1,
	})
	var ve *scenario.Error
	if !errors.As(err, &ve) || !strings.Contains(err.Error(), "events over") {
		t.Fatalf("want an expected-events validation error, got %v", err)
	}
}

func TestForEachRunsEveryIndexBounded(t *testing.T) {
	const n, par = 64, 3
	var ran [n]int32
	var active, peak int32
	var mu sync.Mutex
	pipeline.ForEach(context.Background(), n, par, func(ctx context.Context, i int) {
		cur := atomic.AddInt32(&active, 1)
		mu.Lock()
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		atomic.AddInt32(&ran[i], 1)
		atomic.AddInt32(&active, -1)
	})
	for i, c := range ran {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
	if peak > par {
		t.Errorf("observed %d concurrent workers, cap is %d", peak, par)
	}
}

func TestPlanManyOrderAndIsolation(t *testing.T) {
	bad := trace.ScenarioI()
	grid := *bad.Charging
	grid.Values = append([]float64(nil), bad.Charging.Values...)
	grid.Values[0] = math.Inf(1)
	bad.Charging = &grid

	specs := []pipeline.PlanSpec{
		{Scenario: trace.ScenarioI()},
		{Scenario: bad},
		{Scenario: trace.ScenarioII()},
	}
	out := pipeline.PlanMany(context.Background(), specs, 2)
	if len(out) != len(specs) {
		t.Fatalf("%d outcomes for %d specs", len(out), len(specs))
	}
	if out[0].Err != nil || out[0].Result == nil {
		t.Errorf("spec 0 failed: %v", out[0].Err)
	}
	if out[1].Err == nil {
		t.Error("hostile spec 1 planned successfully")
	}
	if out[2].Err != nil || out[2].Result == nil {
		t.Errorf("spec 2 failed: %v", out[2].Err)
	}

	// The batch result must match a sequential plan of the same spec.
	solo, err := pipeline.Plan(context.Background(), specs[2])
	if err != nil {
		t.Fatal(err)
	}
	if out[2].Result.Allocation.Len() != solo.Allocation.Len() {
		t.Error("batch and solo allocations differ in length")
	}
	for i := range solo.Allocation.Values {
		if out[2].Result.Allocation.Values[i] != solo.Allocation.Values[i] {
			t.Fatalf("slot %d: batch %g vs solo %g", i,
				out[2].Result.Allocation.Values[i], solo.Allocation.Values[i])
		}
	}
}
