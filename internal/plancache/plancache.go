// Package plancache is a concurrency-safe LRU cache for computed
// power plans. Many nodes of a fleet share hardware configurations
// and charging forecasts, so the planning service (internal/server)
// keys each scenario by a canonical hash of everything Algorithm 1/2
// consumes — battery band, parameter table, schedules, τ — and serves
// repeated requests from the cache instead of re-running the
// allocation pipeline.
//
// The cache is generic over the stored value. A clone function,
// supplied at construction, is applied on every Put and Get so a
// caller mutating a returned plan can never poison the cached copy;
// pass nil only for values that are immutable by construction
// (e.g. never-mutated byte slices are NOT immutable — clone them).
package plancache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits and Misses count lookup outcomes (Get and GetOrCompute).
	// A GetOrCompute call coalesced onto another caller's in-flight
	// computation counts as a hit: it was served without computing.
	Hits, Misses uint64
	// Evictions counts entries displaced by capacity pressure.
	Evictions uint64
	// Puts counts insertions (including overwrites).
	Puts uint64
	// Len and Capacity are the current and maximum entry counts.
	Len, Capacity int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a fixed-capacity LRU map from canonical scenario keys to
// computed plans. All methods are safe for concurrent use.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	clone    func(V) V
	order    *list.List // front = most recently used
	items    map[string]*list.Element
	flights  map[string]*flight[V]

	// The counters are atomics, not mutex-guarded fields: the
	// coalesced-waiter path of GetOrCompute and cross-shard stats
	// aggregation (Sharded.Stats) read and bump them without taking
	// the LRU lock, keeping accounting off the hot path and race-free.
	hits, misses, evictions, puts atomic.Uint64
}

type entry[V any] struct {
	key   string
	value V
}

// flight is one in-progress GetOrCompute computation; concurrent
// callers for the same key wait on done instead of recomputing.
type flight[V any] struct {
	done  chan struct{}
	value V
	err   error
}

// New returns a cache holding at most capacity entries. clone is
// applied to values on the way in and on the way out; nil means the
// values are shared as-is (only safe for immutable values).
func New[V any](capacity int, clone func(V) V) (*Cache[V], error) {
	if capacity < 1 {
		return nil, fmt.Errorf("plancache: capacity %d must be at least 1", capacity)
	}
	return &Cache[V]{
		capacity: capacity,
		clone:    clone,
		order:    list.New(),
		items:    make(map[string]*list.Element, capacity),
		flights:  make(map[string]*flight[V]),
	}, nil
}

// Get returns a private copy of the value stored under key and marks
// the entry most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	v := el.Value.(*entry[V]).value
	// Clone outside the lock: the value reference read under the lock
	// stays valid even if a concurrent Put overwrites the entry (the
	// overwrite installs a new value; this one is the pre-overwrite
	// snapshot), and copying a multi-KiB plan body must not serialize
	// other readers.
	c.mu.Unlock()
	c.hits.Add(1)
	if c.clone != nil {
		v = c.clone(v)
	}
	return v, true
}

// Put stores a private copy of value under key, overwriting any
// existing entry, and evicts the least recently used entry if the
// cache is over capacity.
func (c *Cache[V]) Put(key string, value V) {
	if c.clone != nil {
		value = c.clone(value)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, value)
}

// putLocked inserts an already-cloned value; c.mu must be held.
func (c *Cache[V]) putLocked(key string, value V) {
	c.puts.Add(1)
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).value = value
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&entry[V]{key: key, value: value})
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[V]).key)
		c.evictions.Add(1)
	}
}

// GetOrCompute returns the value under key, computing and caching it
// on a miss. Concurrent callers for the same key are coalesced: one
// runs compute, the rest wait for its result (or until their ctx is
// cancelled, in which case they return ctx.Err() without a value).
// The returned bool reports whether the caller was served without
// computing — from the cache or from another caller's in-flight
// computation. A failed compute is not cached; its error propagates
// to every coalesced waiter.
func (c *Cache[V]) GetOrCompute(ctx context.Context, key string, compute func() (V, error)) (V, bool, error) {
	var zero V
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		v := el.Value.(*entry[V]).value
		c.mu.Unlock()
		c.hits.Add(1)
		if c.clone != nil {
			v = c.clone(v)
		}
		return v, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return zero, false, ctx.Err()
		}
		if f.err != nil {
			return zero, true, f.err
		}
		c.hits.Add(1)
		v := f.value
		if c.clone != nil {
			v = c.clone(v)
		}
		return v, true, nil
	}
	c.misses.Add(1)
	f := &flight[V]{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	v, err := compute()
	stored := v
	if err == nil && c.clone != nil {
		stored = c.clone(v)
	}
	c.mu.Lock()
	delete(c.flights, key)
	if err == nil {
		c.putLocked(key, stored)
	}
	c.mu.Unlock()
	f.value, f.err = stored, err
	close(f.done)
	if err != nil {
		return zero, false, err
	}
	return v, false, nil
}

// Len returns the current entry count.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Keys returns the keys from most to least recently used — the
// eviction order reversed. Intended for tests and diagnostics.
func (c *Cache[V]) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry[V]).key)
	}
	return keys
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	n := c.order.Len()
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Puts:      c.puts.Load(),
		Len:       n,
		Capacity:  c.capacity,
	}
}

// Key derives the canonical cache key for a scenario: the hex SHA-256
// of the JSON encoding of parts, in order. encoding/json emits struct
// fields in declaration order and map keys sorted, so two requests
// that decode to the same planning inputs — whatever their original
// field order or whitespace — hash identically.
func Key(parts ...any) (string, error) {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			return "", fmt.Errorf("plancache: hashing key part: %w", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
