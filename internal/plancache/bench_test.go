package plancache

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkShardedGetParallel isolates the cache-lock cost the
// service benches see end to end: parallel warm-cache Gets over a
// working set of keys, single-lock versus sharded. Run with -cpu N;
// on one CPU the two are equivalent by construction.
func BenchmarkShardedGetParallel(b *testing.B) {
	const working = 64
	for _, shards := range []int{1, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, err := NewSharded(4*working, shards, cloneBytes)
			if err != nil {
				b.Fatal(err)
			}
			keys := make([]string, working)
			for i := range keys {
				keys[i] = fmt.Sprintf("scenario-%d", i)
				c.Put(keys[i], shardedValueFor(i))
			}
			var ctr atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := ctr.Add(1)
					if _, ok := c.Get(keys[i%working]); !ok {
						b.Errorf("warm key %d missed", i%working)
						return
					}
				}
			})
		})
	}
}
