package plancache

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func clonePlan(p []float64) []float64 { return append([]float64(nil), p...) }

func TestNewRejectsBadCapacity(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		if _, err := New[int](n, nil); err == nil {
			t.Errorf("New(%d) accepted", n)
		}
	}
}

func TestGetPutBasics(t *testing.T) {
	c, err := New(4, clonePlan)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []float64{1, 2, 3})
	got, ok := c.Get("a")
	if !ok || !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	// Overwrite keeps one entry.
	c.Put("a", []float64{9})
	if c.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", c.Len())
	}
	got, _ = c.Get("a")
	if !reflect.DeepEqual(got, []float64{9}) {
		t.Fatalf("overwritten value = %v", got)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Puts != 2 || s.Capacity != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if r := s.HitRate(); r < 0.66 || r > 0.67 {
		t.Fatalf("hit rate = %g", r)
	}
}

// TestLRUEvictionOrder fills the cache past capacity and checks that
// the least recently *used* entry goes first — a Get refreshes
// recency, not just a Put.
func TestLRUEvictionOrder(t *testing.T) {
	c, err := New(3, clonePlan)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []float64{1})
	c.Put("b", []float64{2})
	c.Put("c", []float64{3})
	c.Get("a") // recency now a, c, b

	c.Put("d", []float64{4}) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if got, want := c.Keys(), []string{"a", "d", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recency order = %v, want %v", got, want)
	}

	c.Put("e", []float64{5}) // evicts c
	c.Put("f", []float64{6}) // evicts d
	for _, key := range []string{"c", "d"} {
		if _, ok := c.Get(key); ok {
			t.Fatalf("%s survived eviction", key)
		}
	}
	s := c.Stats()
	if s.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3", s.Evictions)
	}
	if s.Len != 3 {
		t.Fatalf("len = %d, want 3", s.Len)
	}
}

// TestDeepCopySafety mutates both the slice passed to Put and the
// slice returned by Get; neither write may reach the cached copy.
func TestDeepCopySafety(t *testing.T) {
	c, err := New(2, clonePlan)
	if err != nil {
		t.Fatal(err)
	}
	original := []float64{1, 2, 3}
	c.Put("plan", original)
	original[0] = -999 // caller reuses its buffer

	got, _ := c.Get("plan")
	if got[0] != 1 {
		t.Fatalf("Put aliased the caller's slice: got[0] = %g", got[0])
	}
	got[1] = -999 // caller mutates the returned plan

	again, _ := c.Get("plan")
	if !reflect.DeepEqual(again, []float64{1, 2, 3}) {
		t.Fatalf("Get aliased the cached slice: %v", again)
	}
}

// TestConcurrentHammer drives the cache from many goroutines with a
// shared small key space so gets, puts, evictions and overwrites all
// interleave. Run under -race (the repo's race target does); the
// assertions check the counters stay coherent and every returned
// value is the one stored under its key.
func TestConcurrentHammer(t *testing.T) {
	const (
		workers = 16
		ops     = 2000
		keys    = 32
		cap     = 8
	)
	c, err := New(cap, clonePlan)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				k := rng.Intn(keys)
				key := fmt.Sprintf("scenario-%d", k)
				if rng.Intn(2) == 0 {
					c.Put(key, []float64{float64(k), float64(k) * 2})
				} else if v, ok := c.Get(key); ok {
					if len(v) != 2 || v[0] != float64(k) || v[1] != float64(k)*2 {
						t.Errorf("key %s returned foreign value %v", key, v)
						return
					}
					v[0] = -1 // must not poison the cache
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()

	if n := c.Len(); n > cap {
		t.Fatalf("len %d exceeds capacity %d", n, cap)
	}
	s := c.Stats()
	if s.Hits+s.Misses == 0 || s.Puts == 0 {
		t.Fatalf("implausible stats %+v", s)
	}
	if int(s.Puts)-int(s.Evictions) < s.Len {
		t.Fatalf("counter mismatch: %+v", s)
	}
}

// TestKeyCanonical checks that the canonical hash ignores data that
// is semantically absent and distinguishes data that differs.
func TestKeyCanonical(t *testing.T) {
	type scenario struct {
		Tau    float64   `json:"tau"`
		Values []float64 `json:"values"`
	}
	a1, err := Key("plan", scenario{Tau: 4.8, Values: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Key("plan", scenario{Tau: 4.8, Values: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("identical inputs hashed differently")
	}
	b, err := Key("plan", scenario{Tau: 4.8, Values: []float64{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if a1 == b {
		t.Fatal("different inputs collided")
	}
	c, err := Key("params", scenario{Tau: 4.8, Values: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if a1 == c {
		t.Fatal("endpoint tag ignored")
	}
	if _, err := Key(func() {}); err == nil {
		t.Fatal("unencodable key part accepted")
	}
}

// TestGetOrComputeSingleflight hammers one key from many goroutines
// and checks the value is computed exactly once, everyone gets the
// right answer, and only the computing caller reports a miss.
func TestGetOrComputeSingleflight(t *testing.T) {
	c, err := New[[]float64](4, clonePlan)
	if err != nil {
		t.Fatal(err)
	}
	var computes int32
	started := make(chan struct{})
	release := make(chan struct{})

	const callers = 16
	var mu sync.Mutex
	misses := 0
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, served, err := c.GetOrCompute(context.Background(), "k", func() ([]float64, error) {
				close(started)
				<-release
				atomic.AddInt32(&computes, 1)
				return []float64{1, 2, 3}, nil
			})
			if err != nil {
				t.Errorf("GetOrCompute: %v", err)
				return
			}
			if !reflect.DeepEqual(v, []float64{1, 2, 3}) {
				t.Errorf("got %v", v)
			}
			// Mutating the returned value must not poison the cache.
			v[0] = -99
			if !served {
				mu.Lock()
				misses++
				mu.Unlock()
			}
		}()
	}
	// Let one caller enter compute, give the rest a moment to pile
	// up as coalesced waiters, then release.
	<-started
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := atomic.LoadInt32(&computes); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	if misses != 1 {
		t.Fatalf("%d callers computed, want exactly 1", misses)
	}
	if v, ok := c.Get("k"); !ok || !reflect.DeepEqual(v, []float64{1, 2, 3}) {
		t.Fatalf("cache holds %v after caller mutation", v)
	}
}

// TestGetOrComputeErrorNotCached propagates a compute failure to all
// coalesced waiters without inserting anything.
func TestGetOrComputeErrorNotCached(t *testing.T) {
	c, err := New[[]float64](4, clonePlan)
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	if _, _, err := c.GetOrCompute(context.Background(), "k", func() ([]float64, error) {
		return nil, boom
	}); err != boom {
		t.Fatalf("got %v, want boom", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed compute was cached")
	}
	// A later call retries the computation.
	v, served, err := c.GetOrCompute(context.Background(), "k", func() ([]float64, error) {
		return []float64{7}, nil
	})
	if err != nil || served || !reflect.DeepEqual(v, []float64{7}) {
		t.Fatalf("retry got (%v, served=%v, %v)", v, served, err)
	}
}

// TestGetOrComputeWaiterCancellation releases a coalesced waiter when
// its context is cancelled while the computing caller is stuck.
func TestGetOrComputeWaiterCancellation(t *testing.T) {
	c, err := New[[]float64](4, clonePlan)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		c.GetOrCompute(context.Background(), "k", func() ([]float64, error) { //nolint:errcheck
			close(started)
			<-release
			return []float64{1}, nil
		})
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(ctx, "k", func() ([]float64, error) {
			t.Error("waiter must not compute")
			return nil, nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != context.DeadlineExceeded {
			t.Fatalf("waiter returned %v, want deadline exceeded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
}
