package plancache

import (
	"context"
	"fmt"
	"runtime"
)

// Sharded is a plan cache split across N independent power-of-two
// shards. Each key is routed to one shard by hash, so concurrent
// readers of different keys contend on different locks — the
// single-mutex Cache serializes every reader, which caps throughput
// once many nodes hit a warm cache at once. Each shard is a full
// Cache: per-shard LRU order, per-shard singleflight coalescing, and
// the same clone-isolation contract, so the observable behavior for
// any one key is identical to the unsharded cache (an entry's LRU
// ranking only competes with other keys on its own shard).
//
// All methods are safe for concurrent use.
type Sharded[V any] struct {
	shards []*Cache[V]
	mask   uint64
}

// MaxShards caps the shard count: past the point where shards exceed
// runnable goroutines, more shards only fragment the LRU.
const MaxShards = 256

// DefaultShards returns the shard count used when the caller passes
// 0: GOMAXPROCS rounded up to a power of two, capped at 16. One
// shard per runnable goroutine removes contention; beyond 16 the
// added LRU fragmentation outweighs the (already negligible) residual
// contention.
func DefaultShards() int {
	n := ceilPow2(runtime.GOMAXPROCS(0))
	if n > 16 {
		n = 16
	}
	return n
}

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewSharded returns a sharded cache holding at least capacity
// entries in total. shards is rounded up to a power of two; 0 means
// DefaultShards(). The capacity is divided evenly across shards
// (rounded up, minimum 1 per shard), so the total capacity may
// slightly exceed the request when it does not divide evenly. clone
// has the same contract as New.
func NewSharded[V any](capacity, shards int, clone func(V) V) (*Sharded[V], error) {
	if capacity < 1 {
		return nil, fmt.Errorf("plancache: capacity %d must be at least 1", capacity)
	}
	if shards < 0 || shards > MaxShards {
		return nil, fmt.Errorf("plancache: shard count %d outside [0, %d]", shards, MaxShards)
	}
	if shards == 0 {
		shards = DefaultShards()
	}
	shards = ceilPow2(shards)
	perShard := (capacity + shards - 1) / shards
	s := &Sharded[V]{
		shards: make([]*Cache[V], shards),
		mask:   uint64(shards - 1),
	}
	for i := range s.shards {
		c, err := New(perShard, clone)
		if err != nil {
			return nil, err
		}
		s.shards[i] = c
	}
	return s, nil
}

// shardFor routes a key to its shard by FNV-1a hash. Keys are
// already uniform hex SHA-256 digests in practice, but hashing keeps
// routing balanced for arbitrary key strings too.
func (s *Sharded[V]) shardFor(key string) *Cache[V] {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return s.shards[h&s.mask]
}

// ShardCount returns the number of shards.
func (s *Sharded[V]) ShardCount() int { return len(s.shards) }

// Get returns a private copy of the value stored under key.
func (s *Sharded[V]) Get(key string) (V, bool) {
	return s.shardFor(key).Get(key)
}

// Put stores a private copy of value under key.
func (s *Sharded[V]) Put(key string, value V) {
	s.shardFor(key).Put(key, value)
}

// GetOrCompute returns the value under key, computing and caching it
// on a miss; concurrent callers for the same key are coalesced onto
// one computation. See Cache.GetOrCompute for the full contract.
func (s *Sharded[V]) GetOrCompute(ctx context.Context, key string, compute func() (V, error)) (V, bool, error) {
	return s.shardFor(key).GetOrCompute(ctx, key, compute)
}

// Len returns the total entry count across shards.
func (s *Sharded[V]) Len() int {
	n := 0
	for _, c := range s.shards {
		n += c.Len()
	}
	return n
}

// Keys returns every shard's keys (each shard most to least recently
// used, shards in order). Intended for tests and diagnostics; there
// is no global recency order across shards.
func (s *Sharded[V]) Keys() []string {
	var keys []string
	for _, c := range s.shards {
		keys = append(keys, c.Keys()...)
	}
	return keys
}

// ShardStats snapshots each shard's counters individually, in shard
// order. The service's /metrics renders these as per-shard counter
// series so hot-shard imbalance (a skewed key distribution) is
// visible without a debugger; Stats remains the aggregate view.
func (s *Sharded[V]) ShardStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, c := range s.shards {
		out[i] = c.Stats()
	}
	return out
}

// Stats aggregates the per-shard counters into one snapshot. The
// counters are atomics, so the aggregate is race-free (each counter
// is individually consistent; the snapshot is not a single atomic
// cut across shards, which matches the unsharded cache's contract
// under concurrent mutation).
func (s *Sharded[V]) Stats() Stats {
	var out Stats
	for _, c := range s.shards {
		st := c.Stats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Evictions += st.Evictions
		out.Puts += st.Puts
		out.Len += st.Len
		out.Capacity += st.Capacity
	}
	return out
}
