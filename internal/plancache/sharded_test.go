package plancache

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func cloneBytes(b []byte) []byte { return append([]byte(nil), b...) }

func TestCeilPow2(t *testing.T) {
	for n, want := range map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 16: 16, 17: 32} {
		if got := ceilPow2(n); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNewShardedValidation(t *testing.T) {
	if _, err := NewSharded[int](0, 4, nil); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewSharded[int](4, -1, nil); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := NewSharded[int](4, MaxShards+1, nil); err == nil {
		t.Error("shard count above MaxShards accepted")
	}

	s, err := NewSharded[int](16, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.ShardCount() != 4 {
		t.Fatalf("shards = %d, want 3 rounded up to 4", s.ShardCount())
	}
	if got := s.Stats().Capacity; got < 16 {
		t.Fatalf("total capacity %d below the requested 16", got)
	}

	d, err := NewSharded[int](16, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.ShardCount() != DefaultShards() {
		t.Fatalf("default shards = %d, want %d", d.ShardCount(), DefaultShards())
	}
}

// TestShardForStable checks routing is deterministic and that a
// realistic key population actually spreads across shards.
func TestShardForStable(t *testing.T) {
	s, err := NewSharded[int](64, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[*Cache[int]]int)
	for i := 0; i < 256; i++ {
		key := fmt.Sprintf("scenario-%d", i)
		first := s.shardFor(key)
		if s.shardFor(key) != first {
			t.Fatalf("key %q routed to two shards", key)
		}
		seen[first]++
	}
	if len(seen) != s.ShardCount() {
		t.Fatalf("256 keys landed on %d of %d shards", len(seen), s.ShardCount())
	}
}

// shardedValueFor is the canonical body stored under a key in the
// contention tests; any Get must return exactly these bytes.
func shardedValueFor(k int) []byte {
	return []byte(fmt.Sprintf("{\"plan\":%d,\"tau\":%d}", k, k*3))
}

// TestShardedMatchesSingleShard drives an identical concurrent mixed
// hit/miss workload against a sharded cache and a single-shard
// (single-lock) cache and checks the responses are byte-identical
// cache-layout-independently: every value either configuration ever
// returns for a key is exactly the canonical body for that key.
// Run under -race (the repo's race target includes this package).
func TestShardedMatchesSingleShard(t *testing.T) {
	const (
		workers = 8
		ops     = 1500
		keys    = 48
		cap     = 16
	)
	sharded, err := NewSharded(cap, 8, cloneBytes)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewSharded(cap, 1, cloneBytes)
	if err != nil {
		t.Fatal(err)
	}
	if single.ShardCount() != 1 {
		t.Fatalf("single-shard cache has %d shards", single.ShardCount())
	}

	for name, cache := range map[string]*Sharded[[]byte]{"sharded": sharded, "single": single} {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				ctx := context.Background()
				for i := 0; i < ops; i++ {
					k := rng.Intn(keys)
					key := fmt.Sprintf("scenario-%d", k)
					switch rng.Intn(3) {
					case 0:
						cache.Put(key, shardedValueFor(k))
					case 1:
						if v, ok := cache.Get(key); ok {
							if !bytes.Equal(v, shardedValueFor(k)) {
								t.Errorf("%s: Get(%s) = %s", name, key, v)
								return
							}
							v[0] = '!' // must not poison the cache
						}
					default:
						v, _, err := cache.GetOrCompute(ctx, key, func() ([]byte, error) {
							return shardedValueFor(k), nil
						})
						if err != nil {
							t.Errorf("%s: GetOrCompute(%s): %v", name, key, err)
							return
						}
						if !bytes.Equal(v, shardedValueFor(k)) {
							t.Errorf("%s: GetOrCompute(%s) = %s", name, key, v)
							return
						}
					}
				}
			}(int64(w + 1))
		}
		wg.Wait()

		// Whatever survived eviction must hold canonical bytes.
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("scenario-%d", k)
			if v, ok := cache.Get(key); ok && !bytes.Equal(v, shardedValueFor(k)) {
				t.Fatalf("%s: surviving entry %s corrupted: %s", name, key, v)
			}
		}
		s := cache.Stats()
		if s.Hits+s.Misses == 0 || s.Puts == 0 {
			t.Fatalf("%s: implausible stats %+v", name, s)
		}
		if int(s.Puts)-int(s.Evictions) < s.Len {
			t.Fatalf("%s: counter mismatch %+v", name, s)
		}
		if n := cache.Len(); n > s.Capacity {
			t.Fatalf("%s: len %d exceeds capacity %d", name, n, s.Capacity)
		}
	}
}

// TestShardedSingleflight piles N concurrent misses for one key onto
// a sharded cache and checks they coalesce onto exactly one compute.
func TestShardedSingleflight(t *testing.T) {
	c, err := NewSharded(16, 4, cloneBytes)
	if err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})

	const callers = 12
	var misses atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, served, err := c.GetOrCompute(context.Background(), "hot-key", func() ([]byte, error) {
				close(started)
				<-release
				computes.Add(1)
				return []byte("body"), nil
			})
			if err != nil {
				t.Errorf("GetOrCompute: %v", err)
				return
			}
			if !bytes.Equal(v, []byte("body")) {
				t.Errorf("got %q", v)
			}
			if !served {
				misses.Add(1)
			}
		}()
	}
	<-started
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	if n := misses.Load(); n != 1 {
		t.Fatalf("%d callers reported a miss, want exactly 1", n)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Puts != 1 || s.Hits != callers-1 {
		t.Fatalf("stats %+v, want 1 miss / 1 put / %d hits", s, callers-1)
	}
}

// TestShardedKeysAndLen covers the aggregate views across shards.
func TestShardedKeysAndLen(t *testing.T) {
	c, err := NewSharded(32, 4, cloneBytes)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		c.Put(key, []byte{byte(i)})
		want[key] = true
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d, want 10", c.Len())
	}
	got := c.Keys()
	if len(got) != 10 {
		t.Fatalf("Keys = %v", got)
	}
	for _, k := range got {
		if !want[k] {
			t.Fatalf("unexpected key %q", k)
		}
	}
}
