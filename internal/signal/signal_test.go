package signal

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestKindString(t *testing.T) {
	if NoiseOnly.String() != "noise" || Transient.String() != "transient" || Carrier.String() != "carrier" {
		t.Error("kind names wrong")
	}
	if Kind(7).String() != "Kind(7)" {
		t.Error("unknown kind formatting wrong")
	}
}

func TestChirpEnvelope(t *testing.T) {
	p := ChirpParams{StartFreq: 0.4, EndFreq: 0.05, Amplitude: 0.5, Center: 512, Width: 128}
	x, err := Chirp(1024, p)
	if err != nil {
		t.Fatal(err)
	}
	// Peak magnitude near the center, small at the edges.
	if m := cmplx.Abs(x[512]); math.Abs(m-0.5) > 0.01 {
		t.Errorf("center magnitude = %g, want ≈ 0.5", m)
	}
	if m := cmplx.Abs(x[0]); m > 0.01 {
		t.Errorf("edge magnitude = %g, want ≈ 0", m)
	}
}

func TestChirpValidation(t *testing.T) {
	good := ChirpParams{StartFreq: 0.4, EndFreq: 0.1, Amplitude: 0.5, Center: 10, Width: 5}
	if _, err := Chirp(0, good); err == nil {
		t.Error("zero length must error")
	}
	bad := good
	bad.StartFreq = 0.7
	if _, err := Chirp(100, bad); err == nil {
		t.Error("frequency above Nyquist must error")
	}
	bad = good
	bad.Amplitude = 1.5
	if _, err := Chirp(100, bad); err == nil {
		t.Error("amplitude >= 1 must error")
	}
	bad = good
	bad.Center = 200
	if _, err := Chirp(100, bad); err == nil {
		t.Error("center beyond buffer must error")
	}
	bad = good
	bad.Width = 0
	if _, err := Chirp(100, bad); err == nil {
		t.Error("zero width must error")
	}
}

func TestCarrierTone(t *testing.T) {
	x, err := CarrierTone(256, 0.25, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Constant magnitude.
	for i, c := range x {
		if math.Abs(cmplx.Abs(c)-0.3) > 1e-9 {
			t.Fatalf("sample %d magnitude %g", i, cmplx.Abs(c))
		}
	}
	if _, err := CarrierTone(0, 0.25, 0.3); err == nil {
		t.Error("zero length must error")
	}
	if _, err := CarrierTone(10, 0.9, 0.3); err == nil {
		t.Error("frequency above Nyquist must error")
	}
	if _, err := CarrierTone(10, 0.25, 0); err == nil {
		t.Error("zero amplitude must error")
	}
}

func TestNoiseDeterministicAndScaled(t *testing.T) {
	a, err := Noise(1000, 0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Noise(1000, 0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
	}
	// Empirical sigma close to requested.
	var sum float64
	for _, c := range a {
		sum += real(c) * real(c)
	}
	sigma := math.Sqrt(sum / 1000)
	if sigma < 0.08 || sigma > 0.12 {
		t.Errorf("noise sigma = %g, want ≈ 0.1", sigma)
	}
	if _, err := Noise(-1, 0.1, 1); err == nil {
		t.Error("negative length must error")
	}
	if _, err := Noise(10, -0.1, 1); err == nil {
		t.Error("negative sigma must error")
	}
}

func TestMix(t *testing.T) {
	a := []complex128{1, 2}
	b := []complex128{10, 20}
	if err := Mix(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0] != 11 || a[1] != 22 {
		t.Errorf("Mix = %v", a)
	}
	if err := Mix(a, b[:1]); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestToFixedSaturates(t *testing.T) {
	x := ToFixed([]complex128{complex(2.0, -2.0)})
	f := x[0].Float()
	if real(f) < 0.99 || imag(f) > -0.99 {
		t.Errorf("saturation failed: %v", f)
	}
}

func TestSynthesizeKinds(t *testing.T) {
	cfg := DefaultConfig()
	for _, kind := range []Kind{NoiseOnly, Transient, Carrier} {
		x, err := Synthesize(kind, 2048, cfg, 7)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(x) != 2048 {
			t.Fatalf("%v: length %d", kind, len(x))
		}
		// Peak magnitude separates noise from events.
		peak := 0.0
		for _, s := range x {
			peak = math.Max(peak, cmplx.Abs(s.Float()))
		}
		if kind == NoiseOnly && peak > 0.15 {
			t.Errorf("noise-only peak %g too hot", peak)
		}
		if kind != NoiseOnly && peak < 0.2 {
			t.Errorf("%v peak %g too cold", kind, peak)
		}
	}
	if _, err := Synthesize(Kind(99), 128, cfg, 1); err == nil {
		t.Error("unknown kind must error")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := Synthesize(Transient, 512, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(Transient, 512, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Synthesize must be deterministic in seed")
		}
	}
}
