// Package signal synthesizes the RF inputs of the paper's FORTE
// application: the satellite watches for broadband radio-frequency
// transients (lightning discharges dispersed by the ionosphere) in a
// noisy band that also contains narrowband carriers. This package
// generates all three signal classes deterministically so the
// detection pipeline in package forte has realistic inputs without
// the (unavailable) satellite data — the substitution is recorded in
// DESIGN.md.
package signal

import (
	"fmt"
	"math"
	"math/rand"

	"dpm/internal/fixed"
)

// Kind labels the synthetic signal classes.
type Kind int

const (
	// NoiseOnly is band noise with no embedded signal.
	NoiseOnly Kind = iota
	// Transient is a dispersed broadband chirp — the event FORTE
	// wants to record.
	Transient
	// Carrier is a narrowband interferer that must not trigger a
	// recording.
	Carrier
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case NoiseOnly:
		return "noise"
	case Transient:
		return "transient"
	case Carrier:
		return "carrier"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ChirpParams describes a dispersed transient. Frequencies are
// normalized to cycles per sample (Nyquist = 0.5).
type ChirpParams struct {
	// StartFreq and EndFreq bound the sweep; ionospheric dispersion
	// makes high frequencies arrive first, so StartFreq > EndFreq
	// for a physical event, but any ordering is accepted.
	StartFreq, EndFreq float64
	// Amplitude is the peak envelope amplitude (Q15-safe values are
	// well below 1 to leave noise headroom).
	Amplitude float64
	// Center is the envelope peak's sample index.
	Center int
	// Width is the Gaussian envelope's standard deviation in
	// samples.
	Width int
}

func (p ChirpParams) validate(n int) error {
	if p.StartFreq < 0 || p.StartFreq > 0.5 || p.EndFreq < 0 || p.EndFreq > 0.5 {
		return fmt.Errorf("signal: chirp frequencies (%g, %g) outside [0, 0.5]", p.StartFreq, p.EndFreq)
	}
	if p.Amplitude <= 0 || p.Amplitude >= 1 {
		return fmt.Errorf("signal: chirp amplitude %g outside (0, 1)", p.Amplitude)
	}
	if p.Center < 0 || p.Center >= n {
		return fmt.Errorf("signal: chirp center %d outside [0, %d)", p.Center, n)
	}
	if p.Width <= 0 {
		return fmt.Errorf("signal: non-positive chirp width %d", p.Width)
	}
	return nil
}

// Chirp synthesizes an n-sample dispersed transient: a linear
// frequency sweep under a Gaussian envelope.
func Chirp(n int, p ChirpParams) ([]complex128, error) {
	if n <= 0 {
		return nil, fmt.Errorf("signal: non-positive length %d", n)
	}
	if err := p.validate(n); err != nil {
		return nil, err
	}
	out := make([]complex128, n)
	phase := 0.0
	for i := range out {
		frac := float64(i) / float64(n)
		freq := p.StartFreq + (p.EndFreq-p.StartFreq)*frac
		phase += 2 * math.Pi * freq
		d := float64(i-p.Center) / float64(p.Width)
		env := p.Amplitude * math.Exp(-0.5*d*d)
		out[i] = complex(env*math.Cos(phase), env*math.Sin(phase))
	}
	return out, nil
}

// CarrierTone synthesizes an n-sample constant-amplitude narrowband
// carrier at the normalized frequency.
func CarrierTone(n int, freq, amplitude float64) ([]complex128, error) {
	if n <= 0 {
		return nil, fmt.Errorf("signal: non-positive length %d", n)
	}
	if freq < 0 || freq > 0.5 {
		return nil, fmt.Errorf("signal: carrier frequency %g outside [0, 0.5]", freq)
	}
	if amplitude <= 0 || amplitude >= 1 {
		return nil, fmt.Errorf("signal: carrier amplitude %g outside (0, 1)", amplitude)
	}
	out := make([]complex128, n)
	for i := range out {
		phase := 2 * math.Pi * freq * float64(i)
		out[i] = complex(amplitude*math.Cos(phase), amplitude*math.Sin(phase))
	}
	return out, nil
}

// Noise synthesizes n samples of complex Gaussian noise with the
// given per-component standard deviation, deterministic in seed.
func Noise(n int, sigma float64, seed int64) ([]complex128, error) {
	if n <= 0 {
		return nil, fmt.Errorf("signal: non-positive length %d", n)
	}
	if sigma < 0 {
		return nil, fmt.Errorf("signal: negative noise sigma %g", sigma)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
	}
	return out, nil
}

// Mix adds src into dst sample-wise. Lengths must match.
func Mix(dst, src []complex128) error {
	if len(dst) != len(src) {
		return fmt.Errorf("signal: mixing lengths %d and %d", len(dst), len(src))
	}
	for i := range dst {
		dst[i] += src[i]
	}
	return nil
}

// ToFixed quantizes float samples to Q15 complex with saturation.
func ToFixed(x []complex128) []fixed.Complex {
	out := make([]fixed.Complex, len(x))
	for i, c := range x {
		out[i] = fixed.CFromFloat(c)
	}
	return out
}

// Config bundles the defaults Synthesize uses per kind.
type Config struct {
	// NoiseSigma is the per-component noise standard deviation.
	NoiseSigma float64
	// TransientAmplitude is the chirp envelope peak.
	TransientAmplitude float64
	// CarrierAmplitude is the interferer amplitude.
	CarrierAmplitude float64
}

// DefaultConfig returns amplitudes that give a clearly detectable but
// not saturating transient over the noise floor.
func DefaultConfig() Config {
	return Config{
		NoiseSigma:         0.02,
		TransientAmplitude: 0.35,
		CarrierAmplitude:   0.3,
	}
}

// Synthesize produces an n-sample Q15 capture buffer of the given
// kind: band noise plus, for Transient and Carrier, the embedded
// signal. The seed determines the noise and the event's placement
// and sweep parameters.
func Synthesize(kind Kind, n int, cfg Config, seed int64) ([]fixed.Complex, error) {
	base, err := Noise(n, cfg.NoiseSigma, seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5f3759df))
	switch kind {
	case NoiseOnly:
		// nothing to add
	case Transient:
		p := ChirpParams{
			StartFreq: 0.35 + 0.1*rng.Float64(),
			EndFreq:   0.05 + 0.05*rng.Float64(),
			Amplitude: cfg.TransientAmplitude,
			Center:    n/4 + rng.Intn(n/2),
			Width:     n / 8,
		}
		chirp, err := Chirp(n, p)
		if err != nil {
			return nil, err
		}
		if err := Mix(base, chirp); err != nil {
			return nil, err
		}
	case Carrier:
		tone, err := CarrierTone(n, 0.05+0.4*rng.Float64(), cfg.CarrierAmplitude)
		if err != nil {
			return nil, err
		}
		if err := Mix(base, tone); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("signal: unknown kind %d", int(kind))
	}
	return ToFixed(base), nil
}
