package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"dpm/internal/pipeline"
)

// TestCompareStrategiesCoversRegistry: the sweep scores every
// registered backend on both paper scenarios and ranks them all.
func TestCompareStrategiesCoversRegistry(t *testing.T) {
	cmp, err := CompareStrategies(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	strategies := pipeline.Strategies()
	if len(cmp.Ranking) != len(strategies) {
		t.Fatalf("ranking %v does not cover registry %v", cmp.Ranking, strategies)
	}
	ranked := map[string]bool{}
	for _, name := range cmp.Ranking {
		ranked[name] = true
	}
	for _, name := range strategies {
		if !ranked[name] {
			t.Errorf("strategy %q missing from ranking %v", name, cmp.Ranking)
		}
	}
	if want := 2 * len(strategies); len(cmp.Scores) != want {
		t.Fatalf("got %d scores, want %d (strategies × scenarios)", len(cmp.Scores), want)
	}
	for _, sc := range cmp.Scores {
		if !sc.Feasible {
			t.Errorf("%s on scenario %s: infeasible plan", sc.Strategy, sc.Scenario)
		}
		if sc.Utilization <= 0 || sc.Utilization > 1 {
			t.Errorf("%s on scenario %s: utilization %g outside (0, 1]", sc.Strategy, sc.Scenario, sc.Utilization)
		}
		if sc.WastedJ < 0 || sc.UndersuppliedJ < 0 {
			t.Errorf("%s on scenario %s: negative energy score %+v", sc.Strategy, sc.Scenario, sc)
		}
	}

	// Ranking is genuinely ordered by total burden.
	for i := 1; i < len(cmp.Ranking); i++ {
		wPrev, uPrev := cmp.Totals(cmp.Ranking[i-1])
		wCur, uCur := cmp.Totals(cmp.Ranking[i])
		if wPrev+uPrev > wCur+uCur+1e-9 {
			t.Errorf("ranking out of order: %s (%.3f J) before %s (%.3f J)",
				cmp.Ranking[i-1], wPrev+uPrev, cmp.Ranking[i], wCur+uCur)
		}
	}
}

// TestStrategyTableListsAllBackends: the rendered report names every
// registered strategy.
func TestStrategyTableListsAllBackends(t *testing.T) {
	tbl, cmp, err := StrategyTable(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range pipeline.Strategies() {
		if !strings.Contains(out, name) {
			t.Errorf("table output missing strategy %q:\n%s", name, out)
		}
	}
	if len(cmp.Ranking) == 0 || cmp.Ranking[0] == "" {
		t.Errorf("empty ranking: %v", cmp.Ranking)
	}
}
