package experiments

import (
	"context"
	"fmt"

	"dpm/internal/baseline"
	"dpm/internal/faults"
	"dpm/internal/metrics"
	"dpm/internal/params"
	"dpm/internal/pipeline"
	"dpm/internal/report"
	"dpm/internal/trace"
)

// Fault-injection experiment: the paper's evaluation assumes perfect
// hardware; this sweep asks how the proposed manager degrades when the
// PAMA board misbehaves. For each escalating fault rate the full board
// simulation runs under a seeded fault plan, while the static baseline
// runs with its fleet permanently shrunk by the same worker deaths —
// the static algorithm has no re-planning step, so a dead PIM simply
// caps its table for good.

// Per-period base fault rates at multiplier 1; the sweep scales them.
const (
	baseDeathsPerPeriod  = 0.5
	baseSEUsPerPeriod    = 3
	baseDropsPerPeriod   = 3
	baseSensorsPerPeriod = 1
	baseRebootsPerPeriod = 0.5
)

// FaultPlanFor generates a deterministic fault plan for a scenario:
// rate scales the per-period base rates of every fault class over the
// full horizon.
func FaultPlanFor(s trace.Scenario, rate float64, periods int, seed int64) (*faults.Plan, error) {
	if rate < 0 {
		return nil, fmt.Errorf("experiments: negative fault rate %g", rate)
	}
	horizon := float64(periods) * trace.Period
	perSecond := rate / trace.Period
	return faults.Generate(faults.GenConfig{
		Horizon:         horizon,
		Workers:         PaperParams().MaxProcessors,
		DeathRate:       baseDeathsPerPeriod * perSecond,
		SEURate:         baseSEUsPerPeriod * perSecond,
		CommandLossRate: baseDropsPerPeriod * perSecond,
		SensorRate:      baseSensorsPerPeriod * perSecond,
		RebootRate:      baseRebootsPerPeriod * perSecond,
	}, seed)
}

// FaultRun is one row of the sweep.
type FaultRun struct {
	// Rate is the fault-rate multiplier.
	Rate float64
	// Injected is the generated plan's event count.
	Injected int
	// Stats is the machine run's fault accounting.
	Stats metrics.FaultStats
	// Proposed and Static are the two systems' energy metrics.
	Proposed, Static metrics.Energy
	// TasksCompleted counts the proposed run's finished captures.
	TasksCompleted int
}

// RunFaultSweep executes the proposed manager on the board simulation
// under each fault-rate multiplier, against the static baseline with
// the same permanent deaths.
func RunFaultSweep(s trace.Scenario, rates []float64, periods int, seed int64) ([]FaultRun, error) {
	var runs []FaultRun
	for _, rate := range rates {
		var plan *faults.Plan
		if rate > 0 {
			p, err := FaultPlanFor(s, rate, periods, seed)
			if err != nil {
				return nil, err
			}
			plan = p
		}
		res, err := pipeline.SimulateMachine(context.Background(), pipeline.MachineSpec{
			Scenario:       s,
			Params:         PaperParams(),
			ActualCharging: s.Charging,
			Periods:        periods,
			EventScale:     0.1,
			Seed:           seed,
			Faults:         plan,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fault sweep rate %g: %w", rate, err)
		}

		// The static baseline cannot re-plan: the same deaths cap its
		// parameter table for the whole run.
		pcfg := PaperParams()
		if plan != nil {
			survivors := pcfg.MaxProcessors - plan.DistinctDeaths()
			if survivors < 1 {
				survivors = 1
			}
			pcfg.MaxProcessors = survivors
		}
		tbl, err := params.BuildTable(pcfg)
		if err != nil {
			return nil, err
		}
		static, err := baseline.Run(baseline.Config{
			Table:          tbl,
			Usage:          s.Usage,
			ActualCharging: s.Charging,
			CapacityMax:    s.CapacityMax,
			CapacityMin:    s.CapacityMin,
			InitialCharge:  s.InitialCharge,
			Periods:        periods,
		})
		if err != nil {
			return nil, err
		}
		runs = append(runs, FaultRun{
			Rate:           rate,
			Injected:       plan.Len(),
			Stats:          res.Faults,
			Proposed:       metrics.FromSnapshot(res.Battery),
			Static:         metrics.FromSnapshot(static.Battery),
			TasksCompleted: res.TasksCompleted,
		})
	}
	return runs, nil
}

// FaultTable renders the sweep for a scenario: proposed vs static
// badness (wasted + undersupplied energy) under escalating fault
// rates, with the recovery accounting alongside.
func FaultTable(s trace.Scenario, periods int, seed int64) (*report.Table, []FaultRun, error) {
	runs, err := RunFaultSweep(s, []float64{0, 0.5, 1, 2, 4}, periods, seed)
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Fault sweep: proposed vs static under escalating fault rates, scenario %s, %d period(s) (energy in J)",
			s.Name, periods),
		"Rate", "Faults", "Deaths", "Replans", "Recovery (s)", "Lost",
		"Proposed bad", "Static bad", "Tasks")
	for _, r := range runs {
		t.AddRow(
			report.F1(r.Rate),
			report.I(r.Injected),
			report.I(r.Stats.WorkerDeaths),
			report.I(r.Stats.Replans),
			report.F2(r.Stats.MeanRecoverySeconds()),
			report.F2(r.Stats.EnergyLostJ),
			report.F2(r.Proposed.Badness()),
			report.F2(r.Static.Badness()),
			report.I(r.TasksCompleted),
		)
	}
	return t, runs, nil
}
