package experiments

import (
	"strings"
	"testing"

	"dpm/internal/trace"
)

func TestTable1ShapeMatchesPaper(t *testing.T) {
	tbl, comps, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 4 {
		t.Fatalf("Table 1 rows = %d, want 4", tbl.Rows())
	}
	if len(comps) != 2 {
		t.Fatalf("comparisons = %d", len(comps))
	}
	// The paper's headline: the proposed algorithm beats the static
	// baseline on waste+undersupply on both scenarios, by a wide
	// margin (paper reports ~3–11×; we demand ≥ 2×).
	for _, c := range comps {
		if c.Proposed.Badness()*2 > c.Baseline.Badness() {
			t.Errorf("scenario %s: proposed %.2f J not ≥2× better than static %.2f J",
				c.Scenario, c.Proposed.Badness(), c.Baseline.Badness())
		}
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Proposed") || !strings.Contains(sb.String(), "Static") {
		t.Errorf("Table 1 rendering missing rows:\n%s", sb.String())
	}
}

func TestAllocationTables(t *testing.T) {
	for _, tc := range []struct {
		scenario trace.Scenario
		number   int
	}{
		{trace.ScenarioI(), 2},
		{trace.ScenarioII(), 4},
	} {
		tbl, err := AllocationTable(tc.scenario, tc.number)
		if err != nil {
			t.Fatal(err)
		}
		// Two rows (Pinit + Integration) per iteration, at least one
		// iteration, and converged like the paper (≤ 8 iterations to
		// the paper's 5).
		if tbl.Rows() < 2 || tbl.Rows() > 16 || tbl.Rows()%2 != 0 {
			t.Errorf("table %d: rows = %d", tc.number, tbl.Rows())
		}
	}
}

func TestInitialAllocationConverges(t *testing.T) {
	for _, s := range trace.Scenarios() {
		res, err := InitialAllocation(s)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Errorf("scenario %s: allocation infeasible", s.Name)
		}
		// Like the paper's "more than the minimum requirement": every
		// trajectory point at or above Cmin.
		for i, v := range res.Trajectory {
			if v < s.CapacityMin-1e-6 {
				t.Errorf("scenario %s: trajectory[%d] = %g below Cmin", s.Name, i, v)
			}
		}
	}
}

func TestUpdateTables(t *testing.T) {
	for _, tc := range []struct {
		scenario trace.Scenario
		number   int
	}{
		{trace.ScenarioI(), 3},
		{trace.ScenarioII(), 5},
	} {
		tbl, err := UpdateTable(tc.scenario, tc.number)
		if err != nil {
			t.Fatal(err)
		}
		// Two periods of twelve slots, like the paper's 24 rows.
		if tbl.Rows() != 24 {
			t.Errorf("table %d: rows = %d, want 24", tc.number, tbl.Rows())
		}
	}
}

func TestFigureTables(t *testing.T) {
	f3 := FigureTable(trace.ScenarioI(), 3)
	if f3.Rows() != 12 {
		t.Errorf("figure 3 rows = %d", f3.Rows())
	}
	f4 := FigureTable(trace.ScenarioII(), 4)
	if f4.Rows() != 12 {
		t.Errorf("figure 4 rows = %d", f4.Rows())
	}
	var sb strings.Builder
	if err := f3.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "Time (s),Charging,Use\n") {
		t.Errorf("figure CSV header wrong: %q", sb.String())
	}
}

func TestPaperWorkloadCalibration(t *testing.T) {
	w := PaperWorkload()
	if w.TotalTime != 4.8 || w.SerialTime != 0.48 {
		t.Errorf("workload = %+v", w)
	}
}

func TestPaperParamsMatchesBoard(t *testing.T) {
	cfg := PaperParams()
	if cfg.MaxProcessors != 7 {
		t.Errorf("MaxProcessors = %d (one of eight PIMs is the controller)", cfg.MaxProcessors)
	}
	if len(cfg.Frequencies) != 3 {
		t.Errorf("frequencies = %v", cfg.Frequencies)
	}
	if cfg.OverheadProc != 0 || cfg.OverheadFreq != 0 {
		t.Error("the paper's simulation assumes no switching overheads")
	}
}

func TestDynamicUpdateAdaptsPlan(t *testing.T) {
	res, err := DynamicUpdate(trace.ScenarioI())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Tables 3/5 show the plan being recalculated
	// whenever used and planned diverge; with discrete operating
	// points they always do, so the snapshot must change over time.
	first, last := res.Records[0].Plan, res.Records[len(res.Records)-1].Plan
	changed := false
	for i := range first {
		if first[i] != last[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("plan never changed across two periods")
	}
}

func TestTable1Enhanced(t *testing.T) {
	tbl, comps, err := Table1Enhanced()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 4 || len(comps) != 2 {
		t.Fatalf("rows %d comps %d", tbl.Rows(), len(comps))
	}
	// The enhanced mode's proposed residuals vanish on both scenarios.
	for _, c := range comps {
		if c.Proposed.Badness() > 1.0 {
			t.Errorf("scenario %s: enhanced badness %.2f J", c.Scenario, c.Proposed.Badness())
		}
	}
}

func TestModeString(t *testing.T) {
	if PaperFaithful.String() != "paper-faithful" || Enhanced.String() != "enhanced" {
		t.Error("mode names wrong")
	}
}

func TestFigureChart(t *testing.T) {
	c, err := FigureChart(trace.ScenarioI(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "charging") {
		t.Errorf("chart missing series: %s", sb.String())
	}
}
