package experiments

import (
	"strings"
	"testing"

	"dpm/internal/trace"
)

func TestFaultPlanForScalesWithRate(t *testing.T) {
	s := trace.ScenarioI()
	low, err := FaultPlanFor(s, 0.5, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	high, err := FaultPlanFor(s, 4, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if high.Len() <= low.Len() {
		t.Errorf("rate 4 produced %d events, rate 0.5 produced %d", high.Len(), low.Len())
	}
	if _, err := FaultPlanFor(s, -1, 2, 7); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestRunFaultSweep(t *testing.T) {
	runs, err := RunFaultSweep(trace.ScenarioI(), []float64{0, 2}, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("got %d runs", len(runs))
	}
	clean, faulted := runs[0], runs[1]
	if clean.Injected != 0 || clean.Stats.Any() {
		t.Errorf("rate 0 injected faults: %+v", clean.Stats)
	}
	if faulted.Injected == 0 {
		t.Error("rate 2 injected nothing")
	}
	// The fault-free run must match a plain board run: the sweep's
	// rate-0 row is the undisturbed reference.
	if clean.TasksCompleted == 0 {
		t.Error("reference run completed no tasks")
	}
	for _, r := range runs {
		if r.Proposed.Badness() < 0 || r.Static.Badness() < 0 {
			t.Errorf("negative badness at rate %g", r.Rate)
		}
	}
}

func TestFaultTableRenders(t *testing.T) {
	tbl, runs, err := FaultTable(trace.ScenarioI(), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 5 {
		t.Fatalf("got %d sweep rows", len(runs))
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fault sweep") || !strings.Contains(out, "Static bad") {
		t.Errorf("table missing expected headers:\n%s", out)
	}
	// Deterministic: same seed, same sweep.
	_, runs2, err := FaultTable(trace.ScenarioI(), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range runs {
		if runs[i].Stats != runs2[i].Stats || runs[i].TasksCompleted != runs2[i].TasksCompleted {
			t.Errorf("sweep row %d not deterministic", i)
		}
	}
}
