package experiments

import (
	"errors"
	"sync/atomic"
	"testing"

	"dpm/internal/trace"
)

func TestRunConcurrentOrderAndResults(t *testing.T) {
	tasks := make([]func() (int, error), 50)
	for i := range tasks {
		i := i
		tasks[i] = func() (int, error) { return i * i, nil }
	}
	got, err := RunConcurrent(tasks, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d (order must be preserved)", i, v, i*i)
		}
	}
}

func TestRunConcurrentPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	tasks := []func() (int, error){
		func() (int, error) { return 1, nil },
		func() (int, error) { return 0, boom },
		func() (int, error) { return 3, nil },
	}
	if _, err := RunConcurrent(tasks, 2); !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestRunConcurrentBoundsWorkers(t *testing.T) {
	var inFlight, peak atomic.Int32
	tasks := make([]func() (struct{}, error), 32)
	for i := range tasks {
		tasks[i] = func() (struct{}, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			// Busy-wait briefly so overlaps are observable.
			for j := 0; j < 10000; j++ {
				_ = j
			}
			inFlight.Add(-1)
			return struct{}{}, nil
		}
	}
	if _, err := RunConcurrent(tasks, 3); err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 3 {
		t.Errorf("worker bound exceeded: peak %d", peak.Load())
	}
}

func TestRunConcurrentDefaultWorkers(t *testing.T) {
	tasks := []func() (int, error){func() (int, error) { return 7, nil }}
	got, err := RunConcurrent(tasks, 0)
	if err != nil || got[0] != 7 {
		t.Fatalf("default workers run failed: %v %v", got, err)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	if _, err := MonteCarlo(trace.ScenarioI(), 0.1, 0, 2, 1); err == nil {
		t.Error("zero runs must error")
	}
	if _, err := MonteCarlo(trace.ScenarioI(), 1.0, 4, 2, 1); err == nil {
		t.Error("jitter 1 must error")
	}
}

func TestMonteCarloStatistics(t *testing.T) {
	mc, err := MonteCarlo(trace.ScenarioI(), 0.2, 16, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Runs != 16 || mc.Jitter != 0.2 {
		t.Errorf("metadata wrong: %+v", mc)
	}
	if mc.MeanBadness < 0 || mc.StdBadness < 0 {
		t.Errorf("negative statistics: %+v", mc)
	}
	if mc.WorstBadness < mc.MeanBadness {
		t.Errorf("worst %g below mean %g", mc.WorstBadness, mc.MeanBadness)
	}
	if mc.MeanUtilization <= 0.5 || mc.MeanUtilization > 1 {
		t.Errorf("utilization %g implausible", mc.MeanUtilization)
	}
}

func TestMonteCarloZeroJitterIsDeterministic(t *testing.T) {
	mc, err := MonteCarlo(trace.ScenarioI(), 0, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mc.StdBadness > 1e-9 {
		t.Errorf("zero jitter must have zero variance, got std %g", mc.StdBadness)
	}
}

func TestMonteCarloTable(t *testing.T) {
	tbl, err := MonteCarloTable(trace.ScenarioII(), []float64{0, 0.2}, 8, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 2 {
		t.Errorf("rows = %d", tbl.Rows())
	}
}
