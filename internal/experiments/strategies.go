package experiments

import (
	"context"
	"fmt"
	"sort"

	"dpm/internal/metrics"
	"dpm/internal/pipeline"
	"dpm/internal/report"
	"dpm/internal/trace"

	// Register the alternative planner backends so the comparison
	// sweeps every strategy, not just the paper's.
	_ "dpm/internal/strategy"
)

// StrategyScore is one (strategy, scenario) cell of the planner
// comparison: the plan's feasibility and iteration count from the
// planning stage, and the closed-loop energy outcome from the
// Algorithm 3 simulation that adopted the plan.
type StrategyScore struct {
	// Strategy is the backend name ("paper", "yds", "bunde", …).
	Strategy string
	// Scenario is the trace the backend planned for.
	Scenario string
	// Feasible reports whether the initial plan kept the trajectory
	// inside the battery band.
	Feasible bool
	// Iterations is the planning iteration count (1 for the
	// single-pass backends).
	Iterations int
	// WastedJ is the energy discarded against the full battery over
	// the simulated horizon.
	WastedJ float64
	// UndersuppliedJ is the demand the battery could not cover.
	UndersuppliedJ float64
	// Utilization is delivered/supplied energy in [0, 1].
	Utilization float64
}

// StrategyComparison aggregates a full strategies × scenarios sweep.
type StrategyComparison struct {
	// Scores holds every cell, grouped by strategy in ranked order.
	Scores []StrategyScore
	// Ranking lists the strategies best-first by total wasted +
	// undersupplied energy across all scenarios (utilization breaks
	// ties, higher first).
	Ranking []string
}

// Totals sums a strategy's wasted and undersupplied energy across the
// swept scenarios.
func (c StrategyComparison) Totals(strategy string) (wasted, undersupplied float64) {
	for _, sc := range c.Scores {
		if sc.Strategy == strategy {
			wasted += sc.WastedJ
			undersupplied += sc.UndersuppliedJ
		}
	}
	return wasted, undersupplied
}

// CompareStrategies runs every registered planner backend on every
// paper scenario for the given number of periods: each backend plans
// the period, the Algorithm 3 manager adopts the plan and runs the
// closed-loop simulation (synchronous charge, like the paper's
// tables), and the battery audit scores the outcome.
func CompareStrategies(ctx context.Context, periods int) (StrategyComparison, error) {
	var cmp StrategyComparison
	type agg struct {
		burden      float64 // wasted + undersupplied, lower is better
		utilization float64
	}
	totals := map[string]*agg{}
	for _, name := range pipeline.Strategies() {
		totals[name] = &agg{}
		for _, s := range trace.Scenarios() {
			res, err := pipeline.PlanWith(ctx, name, pipeline.PlanSpec{Scenario: s})
			if err != nil {
				return cmp, fmt.Errorf("experiments: %s plan on scenario %s: %w", name, s.Name, err)
			}
			sim, err := pipeline.Simulate(ctx, pipeline.SimSpec{
				Scenario:   s,
				Params:     PaperParams(),
				Planner:    name,
				Periods:    periods,
				SyncCharge: true,
			})
			if err != nil {
				return cmp, fmt.Errorf("experiments: %s simulate on scenario %s: %w", name, s.Name, err)
			}
			e := metrics.FromSnapshot(sim.Battery)
			cmp.Scores = append(cmp.Scores, StrategyScore{
				Strategy:       name,
				Scenario:       s.Name,
				Feasible:       res.Feasible,
				Iterations:     len(res.Iterations),
				WastedJ:        e.Wasted,
				UndersuppliedJ: e.Undersupplied,
				Utilization:    e.Utilization,
			})
			totals[name].burden += e.Wasted + e.Undersupplied
			totals[name].utilization += e.Utilization
		}
	}
	cmp.Ranking = pipeline.Strategies()
	sort.SliceStable(cmp.Ranking, func(i, j int) bool {
		a, b := totals[cmp.Ranking[i]], totals[cmp.Ranking[j]]
		if a.burden != b.burden {
			return a.burden < b.burden
		}
		return a.utilization > b.utilization
	})
	sort.SliceStable(cmp.Scores, func(i, j int) bool {
		ri := rankIndex(cmp.Ranking, cmp.Scores[i].Strategy)
		rj := rankIndex(cmp.Ranking, cmp.Scores[j].Strategy)
		if ri != rj {
			return ri < rj
		}
		return cmp.Scores[i].Scenario < cmp.Scores[j].Scenario
	})
	return cmp, nil
}

func rankIndex(ranking []string, name string) int {
	for i, n := range ranking {
		if n == name {
			return i
		}
	}
	return len(ranking)
}

// StrategyTable renders the comparison in the evaluation tables'
// style: one row per (rank, strategy, scenario) with the energy
// scores, best strategy first.
func StrategyTable(ctx context.Context, periods int) (*report.Table, StrategyComparison, error) {
	cmp, err := CompareStrategies(ctx, periods)
	if err != nil {
		return nil, cmp, err
	}
	t := report.NewTable(
		fmt.Sprintf("Planner strategy comparison over %d period(s) (energy in J)", periods),
		"Rank", "Strategy", "Scenario", "Feasible", "Iterations",
		"Wasted", "Undersupplied", "Utilization")
	for _, sc := range cmp.Scores {
		t.AddRow(
			report.I(rankIndex(cmp.Ranking, sc.Strategy)+1),
			sc.Strategy,
			sc.Scenario,
			fmt.Sprintf("%t", sc.Feasible),
			report.I(sc.Iterations),
			report.F2(sc.WastedJ),
			report.F2(sc.UndersuppliedJ),
			fmt.Sprintf("%.3f", sc.Utilization),
		)
	}
	return t, cmp, nil
}
