package experiments

import (
	"context"
	"fmt"
	"math"

	"dpm/internal/metrics"
	"dpm/internal/pipeline"
	"dpm/internal/report"
	"dpm/internal/trace"
)

// RunConcurrent executes independent experiment closures across a
// bounded worker pool and returns their results in input order. The
// first error cancels nothing (closures are cheap and independent)
// but is reported after all tasks finish. workers <= 0 uses
// GOMAXPROCS.
func RunConcurrent[T any](tasks []func() (T, error), workers int) ([]T, error) {
	results := make([]T, len(tasks))
	errs := make([]error, len(tasks))
	pipeline.ForEach(context.Background(), len(tasks), workers, func(_ context.Context, i int) {
		results[i], errs[i] = tasks[i]()
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: task %d: %w", i, err)
		}
	}
	return results, nil
}

// MonteCarloResult summarizes a distribution of runs.
type MonteCarloResult struct {
	// Runs is the number of seeds evaluated.
	Runs int
	// Jitter is the forecast-error level evaluated.
	Jitter float64
	// MeanBadness and StdBadness describe the wasted+undersupplied
	// distribution in joules.
	MeanBadness, StdBadness float64
	// WorstBadness is the distribution's maximum.
	WorstBadness float64
	// MeanUtilization averages the runs' energy utilization.
	MeanUtilization float64
}

// MonteCarlo evaluates the manager's robustness: `runs` independent
// jitter realizations of the scenario's charging schedule, simulated
// concurrently, reduced to distribution statistics. It is the
// statistically honest version of a single-seed jitter point.
func MonteCarlo(s trace.Scenario, jitter float64, runs, periods int, baseSeed int64) (MonteCarloResult, error) {
	if runs <= 0 {
		return MonteCarloResult{}, fmt.Errorf("experiments: non-positive run count %d", runs)
	}
	if jitter < 0 || jitter >= 1 {
		return MonteCarloResult{}, fmt.Errorf("experiments: jitter %g outside [0, 1)", jitter)
	}
	tasks := make([]func() (metrics.Energy, error), runs)
	for i := 0; i < runs; i++ {
		seed := baseSeed + int64(i)
		tasks[i] = func() (metrics.Energy, error) {
			actual := s.Charging
			if jitter > 0 {
				actual = trace.Perturb(s.Charging, jitter, seed)
			}
			res, err := pipeline.Simulate(context.Background(), pipeline.SimSpec{
				Scenario:       s,
				Params:         PaperParams(),
				ActualCharging: actual,
				Periods:        periods,
				SyncCharge:     true,
			})
			if err != nil {
				return metrics.Energy{}, err
			}
			return metrics.FromSnapshot(res.Battery), nil
		}
	}
	energies, err := RunConcurrent(tasks, 0)
	if err != nil {
		return MonteCarloResult{}, err
	}

	out := MonteCarloResult{Runs: runs, Jitter: jitter}
	var sum, sumSq, worst, util float64
	for _, e := range energies {
		b := e.Badness()
		sum += b
		sumSq += b * b
		worst = math.Max(worst, b)
		util += e.Utilization
	}
	n := float64(runs)
	out.MeanBadness = sum / n
	out.StdBadness = math.Sqrt(math.Max(0, sumSq/n-out.MeanBadness*out.MeanBadness))
	out.WorstBadness = worst
	out.MeanUtilization = util / n
	return out, nil
}

// MonteCarloTable runs MonteCarlo across jitter levels and renders
// the distribution per level.
func MonteCarloTable(s trace.Scenario, jitters []float64, runs, periods int, seed int64) (*report.Table, error) {
	t := report.NewTable(
		fmt.Sprintf("Monte-Carlo robustness, scenario %s (%d seeds per level, %d periods)", s.Name, runs, periods),
		"Jitter", "Mean badness (J)", "Std (J)", "Worst (J)", "Mean utilization")
	for _, j := range jitters {
		mc, err := MonteCarlo(s, j, runs, periods, seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			report.F2(j),
			report.F2(mc.MeanBadness),
			report.F2(mc.StdBadness),
			report.F2(mc.WorstBadness),
			fmt.Sprintf("%.1f%%", 100*mc.MeanUtilization),
		)
	}
	return t, nil
}
