// Package experiments reproduces every table and figure of the
// paper's evaluation (§5). Each experiment is a function that runs
// the relevant pipeline with the paper's constants and renders the
// result in the paper's layout; cmd/tables prints them and
// bench_test.go times them. The experiment-to-module mapping lives
// in DESIGN.md; paper-vs-measured values are recorded in
// EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"

	"dpm/internal/alloc"
	"dpm/internal/baseline"
	"dpm/internal/dpm"
	"dpm/internal/metrics"
	"dpm/internal/params"
	"dpm/internal/perf"
	"dpm/internal/pipeline"
	"dpm/internal/power"
	"dpm/internal/report"
	"dpm/internal/trace"
)

// PaperWorkload returns the FORTE FFT profile: the 2K-sample
// fixed-point FFT measured at 4.8 s on one 20 MHz processor, with a
// 10% serial fraction for the trigger/assembly stages around the
// parallelizable transform.
func PaperWorkload() perf.Workload {
	w, err := perf.NewWorkload(4.8, 0.48)
	if err != nil {
		panic(err) // constants; cannot fail
	}
	return w
}

// PaperParams returns the Algorithm 2 configuration of the paper's
// simulation: the PAMA board, voltage pinned at 3.3 V, frequencies
// {20, 40, 80} MHz, seven worker processors, and no switching
// overhead ("In this simulation, we assumed no overheads for changing
// the number of processors and frequency").
func PaperParams() params.Config {
	return params.Config{
		System:        power.PAMA(),
		Curve:         power.NewFixedVoltage(3.3, 80e6),
		Workload:      PaperWorkload(),
		Frequencies:   []float64{20e6, 40e6, 80e6},
		MaxProcessors: 7,
		MinProcessors: 0,
	}
}

// ManagerConfig assembles the dpm configuration for a scenario with
// the paper's parameters, via the shared pipeline assembly.
func ManagerConfig(s trace.Scenario) dpm.Config {
	return pipeline.ManagerConfig(s, PaperParams(), dpm.Proportional)
}

// Mode selects between the paper-faithful reproduction and this
// implementation's enhanced configuration.
type Mode int

const (
	// PaperFaithful disables the slot guards and uses the
	// sequential (supply-then-draw) battery discretization — the
	// combination that reproduces the paper's Table 1 magnitudes.
	PaperFaithful Mode = iota
	// Enhanced enables the slot-granular guards and the physical
	// net-flow battery; both algorithms' residuals shrink, the
	// proposed one's to nearly zero.
	Enhanced
)

// String names the mode.
func (m Mode) String() string {
	if m == Enhanced {
		return "enhanced"
	}
	return "paper-faithful"
}

// RunComparison executes the proposed manager and the static
// baseline on one scenario for the given number of periods.
func RunComparison(s trace.Scenario, periods int, mode Mode) (metrics.Comparison, error) {
	bmodel := dpm.NetFlow
	if mode == PaperFaithful {
		bmodel = dpm.Sequential
	}
	proposed, err := pipeline.Simulate(context.Background(), pipeline.SimSpec{
		Scenario:          s,
		Params:            PaperParams(),
		Battery:           bmodel,
		Periods:           periods,
		DisableSlotGuards: mode == PaperFaithful,
	})
	if err != nil {
		return metrics.Comparison{}, fmt.Errorf("experiments: proposed on scenario %s: %w", s.Name, err)
	}
	tbl, err := params.BuildTable(PaperParams())
	if err != nil {
		return metrics.Comparison{}, err
	}
	static, err := baseline.Run(baseline.Config{
		Table:          tbl,
		Usage:          s.Usage,
		ActualCharging: s.Charging,
		CapacityMax:    s.CapacityMax,
		CapacityMin:    s.CapacityMin,
		InitialCharge:  s.InitialCharge,
		Periods:        periods,
		Battery:        bmodel,
	})
	if err != nil {
		return metrics.Comparison{}, fmt.Errorf("experiments: baseline on scenario %s: %w", s.Name, err)
	}
	return metrics.Comparison{
		Scenario: s.Name,
		Proposed: metrics.FromSnapshot(proposed.Battery),
		Baseline: metrics.FromSnapshot(static.Battery),
	}, nil
}

// Table1 reproduces the paper's Table 1 in the paper-faithful mode:
// wasted and undersupplied energy for the proposed and static
// algorithms on both scenarios over two periods.
func Table1() (*report.Table, []metrics.Comparison, error) {
	return table1(PaperFaithful)
}

// Table1Enhanced is the same comparison under the enhanced
// configuration (slot guards + net-flow battery).
func Table1Enhanced() (*report.Table, []metrics.Comparison, error) {
	return table1(Enhanced)
}

func table1(mode Mode) (*report.Table, []metrics.Comparison, error) {
	t := report.NewTable(
		fmt.Sprintf("Table 1: Comparison of algorithms, %s mode (energy in J)", mode),
		"Algorithm", "Metric", "Scenario I", "Scenario II")
	var comps []metrics.Comparison
	for _, s := range trace.Scenarios() {
		c, err := RunComparison(s, 2, mode)
		if err != nil {
			return nil, nil, err
		}
		comps = append(comps, c)
	}
	t.AddRow("Proposed", "Wasted energy", report.F2(comps[0].Proposed.Wasted), report.F2(comps[1].Proposed.Wasted))
	t.AddRow("", "Undersupplied energy", report.F2(comps[0].Proposed.Undersupplied), report.F2(comps[1].Proposed.Undersupplied))
	t.AddRow("Static", "Wasted energy", report.F2(comps[0].Baseline.Wasted), report.F2(comps[1].Baseline.Wasted))
	t.AddRow("", "Undersupplied energy", report.F2(comps[0].Baseline.Undersupplied), report.F2(comps[1].Baseline.Undersupplied))
	return t, comps, nil
}

// InitialAllocation runs §4.1 on a scenario and returns the raw
// result (Tables 2 and 4 print its iteration history).
func InitialAllocation(s trace.Scenario) (*alloc.Result, error) {
	return pipeline.Plan(context.Background(), pipeline.PlanSpec{Scenario: s})
}

// AllocationTable reproduces Table 2 (scenario I) or Table 4
// (scenario II): per iteration, the per-slot allocation Pinit and the
// running integral of the surplus in the paper's W·τ units.
func AllocationTable(s trace.Scenario, tableNumber int) (*report.Table, error) {
	res, err := InitialAllocation(s)
	if err != nil {
		return nil, err
	}
	headers := []string{"Iteration", "Row"}
	for i := 0; i < s.Charging.Len(); i++ {
		headers = append(headers, report.F1(float64(i)*trace.Tau))
	}
	t := report.NewTable(
		fmt.Sprintf("Table %d: Initial power allocation computation, scenario %s (Pinit in W; integration in W·τ)",
			tableNumber, s.Name),
		headers...)
	for i, it := range res.Iterations {
		pinit := []string{report.I(i + 1), "Pinit"}
		integ := []string{"", "Integration"}
		for j := 0; j < it.Allocation.Len(); j++ {
			pinit = append(pinit, report.F2(it.Allocation.Values[j]))
			// The paper's Integration row is the trajectory at the
			// *end* of each slot, expressed in W·τ.
			integ = append(integ, report.F2(it.Trajectory[j+1]/trace.Tau))
		}
		t.AddRow(pinit...)
		t.AddRow(integ...)
	}
	return t, nil
}

// DynamicUpdate runs the closed-loop simulation for two periods and
// returns the slot records behind Tables 3 and 5 (plan snapshots on:
// the tables print the full Pinit(0..11) columns).
func DynamicUpdate(s trace.Scenario) (*dpm.SimResult, error) {
	return pipeline.Simulate(context.Background(), pipeline.SimSpec{
		Scenario:      s,
		Params:        PaperParams(),
		Periods:       2,
		SyncCharge:    true,
		PlanSnapshots: true,
	})
}

// UpdateTable reproduces Table 3 (scenario I) or Table 5
// (scenario II): one row per slot over two periods with the plan
// value, used power, supplied power, and the full plan snapshot.
func UpdateTable(s trace.Scenario, tableNumber int) (*report.Table, error) {
	res, err := DynamicUpdate(s)
	if err != nil {
		return nil, err
	}
	headers := []string{"t (s)", "Pinit(t)", "Used", "Expected", "Supplied"}
	for i := 0; i < s.Charging.Len(); i++ {
		headers = append(headers, fmt.Sprintf("P(%d)", i))
	}
	t := report.NewTable(
		fmt.Sprintf("Table %d: Dynamic update of the power allocation, scenario %s (W)", tableNumber, s.Name),
		headers...)
	for i, r := range res.Records {
		expected := s.Charging.Values[i%s.Charging.Len()]
		row := []string{report.F1(r.Time), report.F2(r.Planned), report.F2(r.UsedPower),
			report.F2(expected), report.F2(r.SuppliedPower)}
		for _, p := range r.Plan {
			row = append(row, report.F2(p))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// FigureChart renders Figure 3 or 4 as an ASCII plot of the two
// schedules.
func FigureChart(s trace.Scenario, figureNumber int) (*report.Chart, error) {
	c := report.NewChart(
		fmt.Sprintf("Figure %d: Charging and use schedule, scenario %s (slots of τ = %.1f s)",
			figureNumber, s.Name, trace.Tau),
		"W")
	if err := c.AddSeries("charging", s.Charging.Values); err != nil {
		return nil, err
	}
	if err := c.AddSeries("use", s.Usage.Values); err != nil {
		return nil, err
	}
	return c, nil
}

// FigureTable reproduces Figure 3 (scenario I) or Figure 4
// (scenario II): the charging and use schedules over one period.
func FigureTable(s trace.Scenario, figureNumber int) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure %d: Charging and use schedule, scenario %s (W)", figureNumber, s.Name),
		"Time (s)", "Charging", "Use")
	for i := 0; i < s.Charging.Len(); i++ {
		t.AddRow(
			report.F1(float64(i)*trace.Tau),
			report.F2(s.Charging.Values[i]),
			report.F2(s.Usage.Values[i]),
		)
	}
	return t
}
