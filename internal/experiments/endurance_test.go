package experiments

import (
	"testing"

	"dpm/internal/battery"
	"dpm/internal/predict"
	"dpm/internal/trace"
)

func TestEnduranceValidation(t *testing.T) {
	s := trace.ScenarioI()
	if _, err := Endurance(EnduranceConfig{Scenario: s, Periods: 0}); err == nil {
		t.Error("zero periods must error")
	}
	if _, err := Endurance(EnduranceConfig{Scenario: s, Periods: 1, SolarDegradationPerPeriod: 1}); err == nil {
		t.Error("degradation 1 must error")
	}
	if _, err := Endurance(EnduranceConfig{Scenario: s, Periods: 1, Jitter: 1}); err == nil {
		t.Error("jitter 1 must error")
	}
}

func TestEnduranceIdealRun(t *testing.T) {
	res, err := Endurance(EnduranceConfig{Scenario: trace.ScenarioI(), Periods: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Periods) != 10 {
		t.Fatalf("periods = %d", len(res.Periods))
	}
	// Ideal conditions: the per-period residual stays a small, stable
	// fraction of the ~68 J/period supply (quantization to discrete
	// operating points keeps it nonzero), and capacity never moves.
	for _, p := range res.Periods {
		if p.Wasted+p.Undersupplied > 3.5 {
			t.Errorf("period %d: badness %g J under ideal conditions", p.Period, p.Wasted+p.Undersupplied)
		}
		if p.Capacity != trace.ScenarioI().CapacityMax {
			t.Errorf("period %d: capacity changed without aging: %g", p.Period, p.Capacity)
		}
	}
	if res.Leaked != 0 || res.Faded != 0 {
		t.Error("no aging configured, but losses recorded")
	}
}

func TestEnduranceAgingShrinksCapacity(t *testing.T) {
	res, err := Endurance(EnduranceConfig{
		Scenario: trace.ScenarioI(),
		Periods:  20,
		Aging: battery.AgingConfig{
			FadePerJoule:           1e-4,
			SelfDischargePerSecond: 1e-5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Periods[0].Capacity
	last := res.Periods[len(res.Periods)-1].Capacity
	if last >= first {
		t.Errorf("capacity did not fade: %g -> %g", first, last)
	}
	if res.Faded <= 0 || res.Leaked <= 0 {
		t.Errorf("aging losses not recorded: faded %g, leaked %g", res.Faded, res.Leaked)
	}
	// The manager must keep the mission alive: utilization stays
	// meaningful in every period.
	for _, p := range res.Periods {
		if p.Utilization < 0.5 {
			t.Errorf("period %d: utilization collapsed to %g", p.Period, p.Utilization)
		}
	}
}

func TestEndurancePredictorTracksDegradation(t *testing.T) {
	cfg := EnduranceConfig{
		Scenario:                  trace.ScenarioI(),
		Periods:                   20,
		SolarDegradationPerPeriod: 0.03,
	}
	stale, err := Endurance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Predictor = predict.NewLastPeriod()
	adaptive, err := Endurance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The adaptive forecast must be far more accurate late in the
	// mission.
	lastStale := stale.Periods[len(stale.Periods)-1].ForecastRMSE
	lastAdaptive := adaptive.Periods[len(adaptive.Periods)-1].ForecastRMSE
	if lastAdaptive >= lastStale/2 {
		t.Errorf("adaptive forecast RMSE %.3f should be well below stale %.3f", lastAdaptive, lastStale)
	}
}

func TestEnduranceTable(t *testing.T) {
	res, err := Endurance(EnduranceConfig{Scenario: trace.ScenarioII(), Periods: 8})
	if err != nil {
		t.Fatal(err)
	}
	tbl := EnduranceTable(res, 2)
	if tbl.Rows() != 4 {
		t.Errorf("strided table rows = %d, want 4", tbl.Rows())
	}
	tbl = EnduranceTable(res, 0) // stride clamped to 1
	if tbl.Rows() != 8 {
		t.Errorf("full table rows = %d", tbl.Rows())
	}
}
