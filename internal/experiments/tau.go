package experiments

import (
	"context"
	"fmt"

	"dpm/internal/metrics"
	"dpm/internal/pipeline"
	"dpm/internal/report"
	"dpm/internal/schedule"
	"dpm/internal/trace"
)

// The paper ties τ to the 2K FFT's runtime at 20 MHz (4.8 s) and
// never varies it. This sweep asks: how much does the planning
// granularity itself matter? Finer slots track the schedules more
// closely but switch parameters more often; coarser slots average
// away the structure.

// ResampleScenario re-discretizes a scenario's schedules onto a grid
// of `slots` per period, preserving each schedule's total energy.
func ResampleScenario(s trace.Scenario, slots int) (trace.Scenario, error) {
	if slots <= 0 {
		return trace.Scenario{}, fmt.Errorf("experiments: non-positive slot count %d", slots)
	}
	out := s
	out.Charging = schedule.FromSchedule(s.Charging, slots)
	out.Usage = schedule.FromSchedule(s.Usage, slots)
	if s.Weight != nil {
		out.Weight = schedule.FromSchedule(s.Weight, slots)
	}
	return out, nil
}

// TauSweep runs the manager at several planning granularities
// (slots per period) and reports the residual energy and switching
// activity at each.
func TauSweep(s trace.Scenario, slotCounts []int, periods int) ([]SweepPoint, error) {
	if len(slotCounts) == 0 {
		return nil, fmt.Errorf("experiments: empty tau sweep")
	}
	out := make([]SweepPoint, 0, len(slotCounts))
	for _, slots := range slotCounts {
		rs, err := ResampleScenario(s, slots)
		if err != nil {
			return nil, err
		}
		res, err := pipeline.Simulate(context.Background(), pipeline.SimSpec{
			Scenario: rs, Params: PaperParams(), Periods: periods,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: tau sweep at %d slots: %w", slots, err)
		}
		out = append(out, SweepPoint{
			X:        rs.Charging.Step, // the τ this slot count implies
			Energy:   metrics.FromSnapshot(res.Battery),
			Switches: res.Switches,
		})
	}
	return out, nil
}

// TauSweepTable renders the sweep.
func TauSweepTable(s trace.Scenario, slotCounts []int, periods int) (*report.Table, error) {
	points, err := TauSweep(s, slotCounts, periods)
	if err != nil {
		return nil, err
	}
	return SweepTable(
		fmt.Sprintf("Planning-granularity sweep, scenario %s (τ varies, period fixed)", s.Name),
		"τ (s)", points), nil
}
