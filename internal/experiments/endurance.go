package experiments

import (
	"fmt"

	"dpm/internal/battery"
	"dpm/internal/dpm"
	"dpm/internal/predict"
	"dpm/internal/report"
	"dpm/internal/trace"
)

// The endurance experiment stretches the paper's two-period
// evaluation to mission length: tens of periods with the solar panel
// degrading, the battery leaking and fading, and the manager
// re-deriving its expected charging schedule each period from the
// realized history (§2's "recorded charging power for the previous
// period"). It demonstrates that the Figure 1 loop stays stable far
// beyond the published horizon.

// EnduranceConfig parameterizes the long run.
type EnduranceConfig struct {
	// Scenario supplies the base schedules and battery band.
	Scenario trace.Scenario
	// Periods is the mission length.
	Periods int
	// SolarDegradationPerPeriod scales the actual charging schedule
	// down each period (e.g. 0.005 = 0.5%/period).
	SolarDegradationPerPeriod float64
	// Jitter adds per-slot multiplicative noise on the actual
	// charging (0 disables).
	Jitter float64
	// Seed drives the jitter realization.
	Seed int64
	// Aging configures the battery non-idealities.
	Aging battery.AgingConfig
	// Predictor re-estimates the expected charging each period; nil
	// keeps the scenario's schedule forever (the stale-forecast
	// comparison case).
	Predictor predict.Predictor
	// DisableSlotGuards turns off the manager's slot-granular
	// budget guards, exposing the raw effect of forecast quality on
	// the energy residuals.
	DisableSlotGuards bool
	// PlanningMargin keeps a fraction of the battery band clear at
	// each end when planning (headroom against jitter).
	PlanningMargin float64
}

// PeriodSummary is one period's accounting.
type PeriodSummary struct {
	// Period is the zero-based index.
	Period int
	// Wasted and Undersupplied are the period's deltas in joules.
	Wasted, Undersupplied float64
	// Utilization is delivered/supplied within the period.
	Utilization float64
	// Capacity is the battery's effective Cmax at period end.
	Capacity float64
	// ForecastRMSE measures expected-vs-actual charging for the
	// period in watts.
	ForecastRMSE float64
}

// EnduranceResult aggregates a run.
type EnduranceResult struct {
	// Periods holds one summary per period.
	Periods []PeriodSummary
	// Battery is the final accounting.
	Battery battery.Snapshot
	// Leaked and Faded are the aging losses in joules.
	Leaked, Faded float64
	// PerfSeconds integrates delivered performance.
	PerfSeconds float64
}

func (c EnduranceConfig) validate() error {
	if c.Periods <= 0 {
		return fmt.Errorf("experiments: non-positive mission length %d", c.Periods)
	}
	if c.SolarDegradationPerPeriod < 0 || c.SolarDegradationPerPeriod >= 1 {
		return fmt.Errorf("experiments: degradation %g outside [0, 1)", c.SolarDegradationPerPeriod)
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return fmt.Errorf("experiments: jitter %g outside [0, 1)", c.Jitter)
	}
	return nil
}

// Endurance runs the mission and returns per-period summaries.
func Endurance(cfg EnduranceConfig) (*EnduranceResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := cfg.Scenario
	base, err := battery.New(battery.Config{
		CapacityMax: s.CapacityMax,
		CapacityMin: s.CapacityMin,
		Initial:     s.InitialCharge,
	})
	if err != nil {
		return nil, err
	}
	bat, err := battery.NewAging(base, cfg.Aging)
	if err != nil {
		return nil, err
	}

	expected := s.Charging
	res := &EnduranceResult{}
	prevWasted, prevUnder := 0.0, 0.0
	for p := 0; p < cfg.Periods; p++ {
		// Realize this period's supply: degraded and jittered.
		scale := 1.0
		for i := 0; i < p; i++ {
			scale *= 1 - cfg.SolarDegradationPerPeriod
		}
		actual := s.Charging.Scale(scale)
		if cfg.Jitter > 0 {
			actual = trace.Perturb(actual, cfg.Jitter, cfg.Seed+int64(p))
		}

		mcfg := ManagerConfig(s)
		mcfg.Charging = expected
		mcfg.CapacityMax = bat.EffectiveCapacity()
		mcfg.InitialCharge = bat.Charge()
		mcfg.DisableSlotGuards = cfg.DisableSlotGuards
		mcfg.PlanningMargin = cfg.PlanningMargin
		mgr, err := dpm.New(mcfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: period %d: %w", p, err)
		}

		tau := mgr.Tau()
		suppliedBefore := bat.TotalSupplied()
		deliveredBefore := bat.TotalDelivered()
		for slot := 0; slot < mgr.Slots(); slot++ {
			point, overhead := mgr.BeginSlot()
			usedPower := point.Power + overhead/tau
			requested := usedPower * tau
			delivered := bat.StepNet(actual.Values[slot], usedPower, tau)
			bat.Age(tau)
			if requested > 0 {
				res.PerfSeconds += point.Perf * tau * (delivered / requested)
			}
			mgr.EndSlot(delivered, actual.Values[slot]*tau)
			mgr.SyncCharge(bat.Charge())
		}

		forecastErr, err := predict.Evaluate(expected, actual)
		if err != nil {
			return nil, err
		}
		supplied := bat.TotalSupplied() - suppliedBefore
		delivered := bat.TotalDelivered() - deliveredBefore
		util := 0.0
		if supplied > 0 {
			util = delivered / supplied
		}
		res.Periods = append(res.Periods, PeriodSummary{
			Period:        p,
			Wasted:        bat.Wasted() - prevWasted,
			Undersupplied: bat.Undersupplied() - prevUnder,
			Utilization:   util,
			Capacity:      bat.EffectiveCapacity(),
			ForecastRMSE:  forecastErr.RMSE,
		})
		prevWasted, prevUnder = bat.Wasted(), bat.Undersupplied()

		if cfg.Predictor != nil {
			if err := cfg.Predictor.Observe(actual); err != nil {
				return nil, err
			}
			predicted, perr := cfg.Predictor.Predict()
			switch {
			case predict.IsInsufficientHistory(perr):
				// Keep the current expectation until the window fills.
			case perr != nil:
				return nil, perr
			default:
				expected = predicted
			}
		}
	}
	res.Battery = bat.Snapshot()
	res.Leaked = bat.Leaked()
	res.Faded = bat.Faded()
	return res, nil
}

// EnduranceTable renders per-period summaries (sampled every stride
// periods to keep long missions readable).
func EnduranceTable(res *EnduranceResult, stride int) *report.Table {
	if stride < 1 {
		stride = 1
	}
	t := report.NewTable(
		"Endurance: per-period accounting",
		"Period", "Wasted (J)", "Undersupplied (J)", "Utilization", "Cmax (J)", "Forecast RMSE (W)")
	for i := 0; i < len(res.Periods); i += stride {
		p := res.Periods[i]
		t.AddRow(
			report.I(p.Period),
			report.F2(p.Wasted),
			report.F2(p.Undersupplied),
			fmt.Sprintf("%.1f%%", 100*p.Utilization),
			report.F2(p.Capacity),
			report.F2(p.ForecastRMSE),
		)
	}
	return t
}
