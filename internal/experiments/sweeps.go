package experiments

import (
	"context"
	"fmt"

	"dpm/internal/metrics"
	"dpm/internal/pipeline"
	"dpm/internal/report"
	"dpm/internal/trace"
)

// This file holds the sensitivity sweeps that extend the paper's
// evaluation: how the proposed manager's wasted/undersupplied energy
// responds to battery sizing, forecast error, and switching overhead.
// cmd/sweep prints them; the bench harness can time them.

// SweepPoint is one row of a sweep.
type SweepPoint struct {
	// X is the swept parameter's value.
	X float64
	// Energy is the run's accounting.
	Energy metrics.Energy
	// Switches counts operating-point changes.
	Switches int
}

// CapacitySweep varies the battery capacity Cmax (as a multiple of
// the scenario default) and reports the manager's residual energy.
// Undersized batteries cannot buffer the eclipse; the sweep locates
// the knee. planner selects the backend the initial plan comes from
// ("" = the paper's Algorithm 1).
func CapacitySweep(s trace.Scenario, multiples []float64, periods int, planner string) ([]SweepPoint, error) {
	if len(multiples) == 0 {
		return nil, fmt.Errorf("experiments: empty capacity sweep")
	}
	out := make([]SweepPoint, 0, len(multiples))
	for _, m := range multiples {
		if m <= 0 {
			return nil, fmt.Errorf("experiments: non-positive capacity multiple %g", m)
		}
		scaled := s
		scaled.CapacityMax = s.CapacityMax * m
		if scaled.CapacityMax <= scaled.CapacityMin {
			return nil, fmt.Errorf("experiments: capacity multiple %g collapses the battery band", m)
		}
		res, err := pipeline.Simulate(context.Background(), pipeline.SimSpec{
			Scenario: scaled, Params: PaperParams(), Planner: planner, Periods: periods,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{X: m, Energy: metrics.FromSnapshot(res.Battery), Switches: res.Switches})
	}
	return out, nil
}

// JitterSweep varies the multiplicative error between the expected
// and actual charging schedules and reports how well Algorithm 3
// absorbs it.
func JitterSweep(s trace.Scenario, jitters []float64, periods int, seed int64, planner string) ([]SweepPoint, error) {
	if len(jitters) == 0 {
		return nil, fmt.Errorf("experiments: empty jitter sweep")
	}
	out := make([]SweepPoint, 0, len(jitters))
	for _, j := range jitters {
		if j < 0 || j >= 1 {
			return nil, fmt.Errorf("experiments: jitter %g outside [0, 1)", j)
		}
		actual := s.Charging
		if j > 0 {
			actual = trace.Perturb(s.Charging, j, seed)
		}
		res, err := pipeline.Simulate(context.Background(), pipeline.SimSpec{
			Scenario:       s,
			Params:         PaperParams(),
			ActualCharging: actual,
			Periods:        periods,
			SyncCharge:     true,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{X: j, Energy: metrics.FromSnapshot(res.Battery), Switches: res.Switches})
	}
	return out, nil
}

// OverheadSweep varies the Algorithm 2 switching overhead (applied to
// both OHn and OHf, in joules) and reports switch counts and residual
// energy.
func OverheadSweep(s trace.Scenario, overheads []float64, periods int, planner string) ([]SweepPoint, error) {
	if len(overheads) == 0 {
		return nil, fmt.Errorf("experiments: empty overhead sweep")
	}
	out := make([]SweepPoint, 0, len(overheads))
	for _, oh := range overheads {
		if oh < 0 {
			return nil, fmt.Errorf("experiments: negative overhead %g", oh)
		}
		pcfg := PaperParams()
		pcfg.OverheadProc = oh
		pcfg.OverheadFreq = oh
		res, err := pipeline.Simulate(context.Background(), pipeline.SimSpec{
			Scenario: s, Params: pcfg, Planner: planner, Periods: periods,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{X: oh, Energy: metrics.FromSnapshot(res.Battery), Switches: res.Switches})
	}
	return out, nil
}

// SweepTable renders a sweep with the given parameter label.
func SweepTable(title, xLabel string, points []SweepPoint) *report.Table {
	t := report.NewTable(title, xLabel, "Wasted (J)", "Undersupplied (J)", "Utilization", "Switches")
	for _, p := range points {
		t.AddRow(
			report.F2(p.X),
			report.F2(p.Energy.Wasted),
			report.F2(p.Energy.Undersupplied),
			fmt.Sprintf("%.1f%%", 100*p.Energy.Utilization),
			report.I(p.Switches),
		)
	}
	return t
}
