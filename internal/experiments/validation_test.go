package experiments

import (
	"math"
	"testing"

	"dpm/internal/machine"
	"dpm/internal/params"
	"dpm/internal/perf"
	"dpm/internal/power"
	"dpm/internal/trace"
)

// Cross-model validation: the repository contains three independent
// renderings of the paper's §4.2 theory — the Eq. 18 closed form,
// the Algorithm 2 discrete table, and the discrete-event board. At
// matching operating points they must tell the same story.

// The discrete table's pick can never beat the continuous optimum
// (it chooses from a subset), and with the paper's coarse frequency
// ladder it stays within a bounded factor of it.
func TestDiscreteNeverBeatsContinuous(t *testing.T) {
	// Use a DVFS-capable configuration so Eq. 18 is non-trivial.
	curve, err := power.NewLinearVF(1.0, 2.0, 100e6, 400e6)
	if err != nil {
		t.Fatal(err)
	}
	w, err := perf.NewWorkload(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := params.Config{
		System: power.SystemModel{
			Proc: power.ProcessorModel{ActiveAtRef: 1, FRef: 400e6, VRef: 2, StandbyPower: 0.001, SleepPower: 0.05},
			N:    16,
		},
		Curve:         curve,
		Workload:      w,
		Frequencies:   []float64{100e6, 200e6, 400e6},
		MaxProcessors: 16,
	}
	tbl, err := params.BuildTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []float64{0.1, 0.3, 0.7, 1.5, 3, 6, 10} {
		discrete := tbl.Select(budget)
		continuous, err := params.Continuous(cfg, budget)
		if err != nil {
			t.Fatal(err)
		}
		// Eq. 18 ignores the standby draw of inactive processors, so
		// compare performance only, with a small numerical slack.
		if discrete.Perf > continuous.Perf*1.05 {
			t.Errorf("budget %g: discrete %g beats continuous %g", budget, discrete.Perf, continuous.Perf)
		}
		// With a 3-step ladder the discrete pick should stay within
		// 4× of the optimum across the sweep (it only collapses near
		// the idle floor).
		if discrete.N > 0 && discrete.Perf < continuous.Perf/4 {
			t.Errorf("budget %g: discrete %g too far below continuous %g", budget, discrete.Perf, continuous.Perf)
		}
	}
}

// The gang-scheduled board must reproduce perf.ExecutionTime: a lone
// capture on a fixed (n, f) configuration finishes in the Amdahl
// time, within the command-latency slack.
func TestMachineMatchesAmdahlExecutionTime(t *testing.T) {
	s := trace.ScenarioI()
	// Freeze the configuration: constant generous charging so the
	// manager picks the top point (7 × 80 MHz) every slot.
	flat := trace.Scenario{
		Name:          "flat",
		Charging:      s.Charging.Scale(0), // start from zeros
		Usage:         s.Usage.Scale(0),
		CapacityMax:   s.CapacityMax,
		CapacityMin:   s.CapacityMin,
		InitialCharge: s.CapacityMax,
	}
	for i := range flat.Charging.Values {
		flat.Charging.Values[i] = 4.0
		flat.Usage.Values[i] = 4.0
	}
	cfg := machine.Config{
		Manager:       ManagerConfig(flat),
		Events:        []trace.Event{{Time: 10.0, Seed: 1}},
		Periods:       2,
		GangScheduled: true,
	}
	b, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != 1 {
		t.Fatalf("completed %d, want 1", res.TasksCompleted)
	}
	// Expected: the 2K task (FFT/0.6 cycles) split 10%/90% serial/
	// parallel on 7 workers at 80 MHz.
	const taskCycles = 4.8 * 20e6 / 0.6
	w := PaperWorkload()
	expected := taskCycles*w.SerialFraction()/80e6 +
		taskCycles*(1-w.SerialFraction())/(7*80e6)
	if math.Abs(res.MeanLatencySeconds-expected) > 0.1*expected+1e-3 {
		t.Errorf("gang latency %g s, Amdahl predicts %g s", res.MeanLatencySeconds, expected)
	}
}

// The analytic simulator's used-energy equals the sum of its per-slot
// records — no silent accounting.
func TestAnalyticRecordsAccountForAllEnergy(t *testing.T) {
	res, err := DynamicUpdate(trace.ScenarioI())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range res.Records {
		sum += r.UsedPower * trace.Tau
	}
	if math.Abs(sum-res.Battery.TotalDrawn) > res.Battery.Undersupplied+1e-6 {
		t.Errorf("record energy %g J vs battery delivered %g J (undersupplied %g J)",
			sum, res.Battery.TotalDrawn, res.Battery.Undersupplied)
	}
}

// The board's measured energy is consistent with its per-slot used
// powers.
func TestMachineRecordsAccountForAllEnergy(t *testing.T) {
	s := trace.ScenarioI()
	events, err := trace.PoissonEvents(s.Usage, 0.1, 2*trace.Period, 17)
	if err != nil {
		t.Fatal(err)
	}
	b, err := machine.New(machine.Config{
		Manager: ManagerConfig(s),
		Events:  events,
		Periods: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range res.Records {
		sum += r.UsedPower * trace.Tau
	}
	if math.Abs(sum-res.EnergyUsed) > 1e-6 {
		t.Errorf("slot records %g J vs meter %g J", sum, res.EnergyUsed)
	}
}
