package experiments

import (
	"strings"
	"testing"

	"dpm/internal/trace"
)

func TestCapacitySweep(t *testing.T) {
	points, err := CapacitySweep(trace.ScenarioI(), []float64{0.5, 1, 2}, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Energy.Utilization <= 0 || p.Energy.Utilization > 1 {
			t.Errorf("Cmax×%g: utilization %g", p.X, p.Energy.Utilization)
		}
	}
	// A huge battery must waste at most as much as a tiny one.
	tiny, err := CapacitySweep(trace.ScenarioI(), []float64{0.1}, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	huge, err := CapacitySweep(trace.ScenarioI(), []float64{10}, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if huge[0].Energy.Wasted > tiny[0].Energy.Wasted+1e-9 {
		t.Errorf("10× battery wasted %g J vs 0.1× %g J", huge[0].Energy.Wasted, tiny[0].Energy.Wasted)
	}
}

func TestCapacitySweepValidation(t *testing.T) {
	if _, err := CapacitySweep(trace.ScenarioI(), nil, 2, ""); err == nil {
		t.Error("empty sweep must error")
	}
	if _, err := CapacitySweep(trace.ScenarioI(), []float64{-1}, 2, ""); err == nil {
		t.Error("negative multiple must error")
	}
	if _, err := CapacitySweep(trace.ScenarioI(), []float64{0.001}, 2, ""); err == nil {
		t.Error("band-collapsing multiple must error")
	}
}

func TestJitterSweepDegradesGracefully(t *testing.T) {
	points, err := JitterSweep(trace.ScenarioII(), []float64{0, 0.3}, 2, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	zero, noisy := points[0], points[1]
	if noisy.Energy.Badness() < zero.Energy.Badness()-1e-9 {
		t.Errorf("noise cannot help: %.2f J at 0.3 vs %.2f J at 0", noisy.Energy.Badness(), zero.Energy.Badness())
	}
	// Even 30% forecast error must stay below a third of the supply.
	if noisy.Energy.Badness() > 0.33*noisy.Energy.Supplied {
		t.Errorf("jitter 0.3: badness %.2f J of %.2f J supplied", noisy.Energy.Badness(), noisy.Energy.Supplied)
	}
}

func TestJitterSweepValidation(t *testing.T) {
	if _, err := JitterSweep(trace.ScenarioI(), nil, 2, 1, ""); err == nil {
		t.Error("empty sweep must error")
	}
	if _, err := JitterSweep(trace.ScenarioI(), []float64{1.5}, 2, 1, ""); err == nil {
		t.Error("jitter >= 1 must error")
	}
}

func TestOverheadSweepReducesSwitches(t *testing.T) {
	points, err := OverheadSweep(trace.ScenarioI(), []float64{0, 5}, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if points[1].Switches > points[0].Switches {
		t.Errorf("higher overhead increased switches: %d -> %d", points[0].Switches, points[1].Switches)
	}
}

func TestOverheadSweepValidation(t *testing.T) {
	if _, err := OverheadSweep(trace.ScenarioI(), nil, 2, ""); err == nil {
		t.Error("empty sweep must error")
	}
	if _, err := OverheadSweep(trace.ScenarioI(), []float64{-1}, 2, ""); err == nil {
		t.Error("negative overhead must error")
	}
}

func TestSweepTable(t *testing.T) {
	points, err := OverheadSweep(trace.ScenarioI(), []float64{0, 1}, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	tbl := SweepTable("demo", "X", points)
	if tbl.Rows() != 2 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Switches") {
		t.Errorf("table missing column: %s", sb.String())
	}
}

func TestResampleScenario(t *testing.T) {
	s := trace.ScenarioI()
	rs, err := ResampleScenario(s, 24)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Charging.Len() != 24 || rs.Usage.Len() != 24 {
		t.Fatalf("resampled slots = %d/%d", rs.Charging.Len(), rs.Usage.Len())
	}
	// Energy preserved.
	if diff := rs.Charging.Total() - s.Charging.Total(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("charging energy changed by %g J", diff)
	}
	if _, err := ResampleScenario(s, 0); err == nil {
		t.Error("zero slots must error")
	}
}

func TestTauSweep(t *testing.T) {
	points, err := TauSweep(trace.ScenarioI(), []int{6, 12, 24}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// τ halves as slot count doubles.
	if points[0].X != 2*points[1].X || points[1].X != 2*points[2].X {
		t.Errorf("taus = %g, %g, %g", points[0].X, points[1].X, points[2].X)
	}
	// Finer planning switches at least as often.
	if points[2].Switches < points[0].Switches {
		t.Errorf("finer τ switched less: %d vs %d", points[2].Switches, points[0].Switches)
	}
	if _, err := TauSweep(trace.ScenarioI(), nil, 2); err == nil {
		t.Error("empty sweep must error")
	}
}

func TestTauSweepTable(t *testing.T) {
	tbl, err := TauSweepTable(trace.ScenarioII(), []int{6, 12}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 2 {
		t.Errorf("rows = %d", tbl.Rows())
	}
}
