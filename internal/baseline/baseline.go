// Package baseline implements the comparator algorithms the paper
// measures its manager against.
//
// The paper's §5 "static algorithm" has no look-ahead: the system is
// simply off while there is no input to process and runs the demand
// as it arrives; surplus charging energy goes to the battery and
// deficits are drawn from it. Because nothing is spent early or
// saved ahead of time, the battery overflows during sunny idle
// stretches (wasted energy) and empties during busy eclipses
// (undersupplied energy) — the two Table 1 metrics.
//
// A time-out variant (the "simplest and most widely used technique"
// of the paper's related work) keeps the system powered for a fixed
// number of idle slots before turning it off.
package baseline

import (
	"fmt"

	"dpm/internal/battery"
	"dpm/internal/dpm"
	"dpm/internal/params"
	"dpm/internal/scenario"
	"dpm/internal/schedule"
)

// Config describes a baseline run.
type Config struct {
	// Table is the board's operating-point frontier; the baseline
	// picks the cheapest point that covers each slot's demand.
	Table *params.Table
	// Usage is the demanded power per slot in watts (the scenario's
	// use schedule).
	Usage *schedule.Grid
	// ActualCharging is the power actually supplied per slot; nil
	// means no external supply.
	ActualCharging *schedule.Grid
	// CapacityMax, CapacityMin and InitialCharge configure the
	// battery in joules.
	CapacityMax   float64
	CapacityMin   float64
	InitialCharge float64
	// Periods is the number of periods to simulate.
	Periods int
	// IdleTimeoutSlots keeps the system at its last operating point
	// for this many zero-demand slots before dropping to idle; 0 is
	// the paper's static algorithm (immediate off).
	IdleTimeoutSlots int
	// Battery selects the intra-slot battery semantics (see
	// dpm.BatteryModel); use the same model as the proposed run
	// being compared against.
	Battery dpm.BatteryModel
}

func (c Config) validate() error {
	if c.Table == nil {
		return fmt.Errorf("baseline: nil operating-point table")
	}
	if c.Usage == nil {
		return fmt.Errorf("baseline: nil usage grid")
	}
	if err := scenario.ValidateGrid("usage", c.Usage, true); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if c.ActualCharging != nil {
		if err := scenario.ValidateGrid("charging", c.ActualCharging, true); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
	}
	for name, v := range map[string]float64{
		"capacityMax":   c.CapacityMax,
		"capacityMin":   c.CapacityMin,
		"initialCharge": c.InitialCharge,
	} {
		if err := scenario.ValidateEnergy(name, v); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
	}
	if c.Periods <= 0 {
		return fmt.Errorf("baseline: non-positive period count %d", c.Periods)
	}
	if c.IdleTimeoutSlots < 0 {
		return fmt.Errorf("baseline: negative idle timeout %d", c.IdleTimeoutSlots)
	}
	if c.ActualCharging != nil && c.ActualCharging.Len() != c.Usage.Len() {
		return fmt.Errorf("baseline: charging has %d slots, usage %d",
			c.ActualCharging.Len(), c.Usage.Len())
	}
	return nil
}

// selectCovering returns the cheapest frontier point whose power
// covers the demand (zero demand maps to the idle floor).
func selectCovering(tbl *params.Table, demand float64) params.OperatingPoint {
	if demand <= 0 {
		return tbl.Points()[0]
	}
	return tbl.SelectCovering(demand)
}

// Run simulates the baseline policy and returns the same result
// shape as dpm.Simulate so reports can compare them directly.
func Run(cfg Config) (*dpm.SimResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	bat, err := battery.New(battery.Config{
		CapacityMax: cfg.CapacityMax,
		CapacityMin: cfg.CapacityMin,
		Initial:     cfg.InitialCharge,
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: battery: %w", err)
	}

	tau := cfg.Usage.Step
	nSlots := cfg.Usage.Len()
	res := &dpm.SimResult{}
	idle := cfg.Table.Points()[0]
	var prev params.OperatingPoint
	idleRun := 0
	for s := 0; s < cfg.Periods*nSlots; s++ {
		idx := s % nSlots
		demand := cfg.Usage.Values[idx]

		var point params.OperatingPoint
		if demand > 0 {
			point = selectCovering(cfg.Table, demand)
			idleRun = 0
		} else {
			idleRun++
			if idleRun <= cfg.IdleTimeoutSlots && s > 0 {
				point = prev // time-out window: hold the last point
			} else {
				point = idle
			}
		}
		if s > 0 && point != prev {
			res.Switches++
		}
		prev = point

		supply := 0.0
		if cfg.ActualCharging != nil {
			supply = cfg.ActualCharging.Values[idx]
		}
		requested := point.Power * tau
		delivered := cfg.Battery.Step(bat, supply, point.Power, tau)
		if requested > 0 {
			res.PerfSeconds += point.Perf * tau * (delivered / requested)
		}
		res.Records = append(res.Records, dpm.SlotRecord{
			Time:          float64(s) * tau,
			Planned:       demand,
			Point:         point,
			UsedPower:     point.Power,
			SuppliedPower: supply,
			Charge:        bat.Charge(),
		})
	}
	res.Battery = bat.Snapshot()
	return res, nil
}
