package baseline

import (
	"testing"

	"dpm/internal/predict"
	"dpm/internal/trace"
)

func TestOptimalTimeoutFindsBest(t *testing.T) {
	cfg := scenarioConfig(t, trace.ScenarioII()) // has zero-demand slots
	best, res, err := OptimalTimeout(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if best < 0 || best > 4 {
		t.Fatalf("best timeout = %d", best)
	}
	if res == nil || len(res.Records) == 0 {
		t.Fatal("no result returned")
	}
	// The optimum cannot be worse than any individual setting.
	for timeout := 0; timeout <= 4; timeout++ {
		c := cfg
		c.IdleTimeoutSlots = timeout
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if res.Battery.Wasted+res.Battery.Undersupplied >
			r.Battery.Wasted+r.Battery.Undersupplied+1e-9 {
			t.Errorf("timeout %d beats the 'optimal' one", timeout)
		}
	}
}

func TestOptimalTimeoutValidation(t *testing.T) {
	cfg := scenarioConfig(t, trace.ScenarioI())
	if _, _, err := OptimalTimeout(cfg, -1); err == nil {
		t.Error("negative bound must error")
	}
	bad := cfg
	bad.Table = nil
	if _, _, err := OptimalTimeout(bad, 2); err == nil {
		t.Error("invalid config must propagate")
	}
}

func TestRunPredictiveBasic(t *testing.T) {
	cfg := scenarioConfig(t, trace.ScenarioI())
	cfg.Periods = 4
	res, err := RunPredictive(cfg, predict.NewLastPeriod())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 4*12 {
		t.Fatalf("records = %d", len(res.Records))
	}
	// Times must be globally increasing across period boundaries.
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].Time <= res.Records[i-1].Time {
			t.Fatalf("time not increasing at %d", i)
		}
	}
	if res.Battery.Utilization <= 0 {
		t.Error("no utilization accounted")
	}
}

func TestRunPredictiveMatchesStaticOnStationaryDemand(t *testing.T) {
	// With identical demand every period, a last-period predictor is
	// an oracle from period 2 on, so predictive ≈ static.
	cfg := scenarioConfig(t, trace.ScenarioI())
	cfg.Periods = 3
	static, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := RunPredictive(cfg, predict.NewLastPeriod())
	if err != nil {
		t.Fatal(err)
	}
	sBad := static.Battery.Wasted + static.Battery.Undersupplied
	pBad := pred.Battery.Wasted + pred.Battery.Undersupplied
	if pBad > sBad*1.05+1e-9 || pBad < sBad*0.95-1e-9 {
		t.Errorf("stationary demand: predictive %.2f J vs static %.2f J should match", pBad, sBad)
	}
}

func TestRunPredictiveValidation(t *testing.T) {
	cfg := scenarioConfig(t, trace.ScenarioI())
	if _, err := RunPredictive(cfg, nil); err == nil {
		t.Error("nil predictor must error")
	}
	bad := cfg
	bad.Usage = nil
	if _, err := RunPredictive(bad, predict.NewLastPeriod()); err == nil {
		t.Error("invalid config must propagate")
	}
}
