package baseline

import (
	"fmt"

	"dpm/internal/dpm"
	"dpm/internal/predict"
)

// The paper's §5 comparison calls its comparator "the optimal
// time-out algorithm": the classic policy family that keeps the
// system powered for some grace window after the last work and then
// turns it off, with the window chosen as well as possible. This
// file provides that optimizer, plus the related-work "predictive
// shutdown" policy ([10][25] in the paper) that powers slots based on
// a demand forecast instead of current demand.

// OptimalTimeout sweeps the idle time-out from 0 to maxTimeoutSlots
// and returns the best setting by combined wasted+undersupplied
// energy, with its run result.
func OptimalTimeout(cfg Config, maxTimeoutSlots int) (int, *dpm.SimResult, error) {
	if maxTimeoutSlots < 0 {
		return 0, nil, fmt.Errorf("baseline: negative time-out bound %d", maxTimeoutSlots)
	}
	bestTimeout := -1
	var bestRes *dpm.SimResult
	bestBad := 0.0
	for timeout := 0; timeout <= maxTimeoutSlots; timeout++ {
		c := cfg
		c.IdleTimeoutSlots = timeout
		res, err := Run(c)
		if err != nil {
			return 0, nil, err
		}
		bad := res.Battery.Wasted + res.Battery.Undersupplied
		if bestTimeout < 0 || bad < bestBad {
			bestTimeout, bestRes, bestBad = timeout, res, bad
		}
	}
	return bestTimeout, bestRes, nil
}

// RunPredictive simulates the predictive-shutdown policy: each
// period after the first, the per-slot operating point is chosen to
// cover the *predicted* demand (from the predictor trained on the
// realized usage of earlier periods) rather than the oracle demand
// the static policy reads. The first period runs reactively while
// the predictor has no history. Battery accounting matches Run so
// results compare directly.
func RunPredictive(cfg Config, p predict.Predictor) (*dpm.SimResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("baseline: nil predictor")
	}

	nSlots := cfg.Usage.Len()
	res := &dpm.SimResult{}
	var last *dpm.SimResult
	for period := 0; period < cfg.Periods; period++ {
		demand := cfg.Usage
		if period > 0 {
			predicted, err := p.Predict()
			switch {
			case predict.IsInsufficientHistory(err):
				// Windowed predictor still warming up: stay reactive on
				// the configured schedule until it can estimate.
			case err != nil:
				return nil, err
			default:
				demand = predicted
			}
		}
		c := cfg
		c.Usage = demand
		c.Periods = 1
		// Carry the battery across periods by replaying its end state
		// as the next initial charge; waste/undersupply accumulate in
		// res below.
		if last != nil {
			c.InitialCharge = last.Battery.Charge
		}
		one, err := Run(c)
		if err != nil {
			return nil, err
		}
		// Accumulate.
		for i := range one.Records {
			one.Records[i].Time += float64(period*nSlots) * cfg.Usage.Step
		}
		res.Records = append(res.Records, one.Records...)
		res.PerfSeconds += one.PerfSeconds
		res.Switches += one.Switches
		res.Battery.Wasted += one.Battery.Wasted
		res.Battery.Undersupplied += one.Battery.Undersupplied
		res.Battery.TotalSupplied += one.Battery.TotalSupplied
		res.Battery.TotalDrawn += one.Battery.TotalDrawn
		res.Battery.Charge = one.Battery.Charge
		last = one

		if err := p.Observe(cfg.Usage); err != nil {
			return nil, err
		}
	}
	if res.Battery.TotalSupplied > 0 {
		res.Battery.Utilization = res.Battery.TotalDrawn / res.Battery.TotalSupplied
	}
	return res, nil
}
