package baseline

import (
	"testing"

	"dpm/internal/dpm"
	"dpm/internal/params"
	"dpm/internal/perf"
	"dpm/internal/power"
	"dpm/internal/trace"
)

func paperTable(t *testing.T) *params.Table {
	t.Helper()
	w, err := perf.NewWorkload(4.8, 0.48)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := params.BuildTable(params.Config{
		System:        power.PAMA(),
		Curve:         power.NewFixedVoltage(3.3, 80e6),
		Workload:      w,
		Frequencies:   []float64{20e6, 40e6, 80e6},
		MaxProcessors: 7,
		MinProcessors: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func scenarioConfig(t *testing.T, s trace.Scenario) Config {
	t.Helper()
	return Config{
		Table:          paperTable(t),
		Usage:          s.Usage,
		ActualCharging: s.Charging,
		CapacityMax:    s.CapacityMax,
		CapacityMin:    s.CapacityMin,
		InitialCharge:  s.InitialCharge,
		Periods:        2,
	}
}

func TestRunScenarioI(t *testing.T) {
	res, err := Run(scenarioConfig(t, trace.ScenarioI()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 24 {
		t.Fatalf("records = %d", len(res.Records))
	}
	if res.PerfSeconds <= 0 {
		t.Error("baseline must do some work")
	}
}

func TestValidation(t *testing.T) {
	cfg := scenarioConfig(t, trace.ScenarioI())
	bad := cfg
	bad.Table = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil table must error")
	}
	bad = cfg
	bad.Usage = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil usage must error")
	}
	bad = cfg
	bad.Periods = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero periods must error")
	}
	bad = cfg
	bad.IdleTimeoutSlots = -1
	if _, err := Run(bad); err == nil {
		t.Error("negative timeout must error")
	}
	bad = cfg
	bad.CapacityMax = 0
	if _, err := Run(bad); err == nil {
		t.Error("bad battery must error")
	}
}

func TestSelectCovering(t *testing.T) {
	tbl := paperTable(t)
	pts := tbl.Points()
	if got := selectCovering(tbl, 0); got != pts[0] {
		t.Errorf("zero demand must idle: %v", got)
	}
	// Any positive demand gets covered or maxed out.
	for _, d := range []float64{0.1, 0.5, 1, 2, 3, 10} {
		got := selectCovering(tbl, d)
		if got.Power < d && got != pts[len(pts)-1] {
			t.Errorf("demand %g not covered by %v", d, got)
		}
	}
}

func TestIdleTimeoutHoldsPoint(t *testing.T) {
	s := trace.ScenarioII() // slot 7 has zero demand
	cfg := scenarioConfig(t, s)
	cfg.IdleTimeoutSlots = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Slot 7 demand is 0; with a 1-slot timeout the point from slot 6
	// is held instead of idling.
	if res.Records[7].Point != res.Records[6].Point {
		t.Errorf("timeout did not hold the point: %v then %v",
			res.Records[6].Point, res.Records[7].Point)
	}
	// Without the timeout, slot 7 idles.
	cfg.IdleTimeoutSlots = 0
	res0, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res0.Records[7].Point.N != 0 {
		t.Errorf("static algorithm must idle at zero demand: %v", res0.Records[7].Point)
	}
}

// The paper's Table 1 headline: the proposed algorithm wastes far
// less energy than the static baseline on both scenarios. We demand a
// ≥2× separation on waste+undersupply, well under the paper's
// reported ~3–11× but robust to modeling drift.
func TestProposedBeatsStatic(t *testing.T) {
	w, err := perf.NewWorkload(4.8, 0.48)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := params.Config{
		System:        power.PAMA(),
		Curve:         power.NewFixedVoltage(3.3, 80e6),
		Workload:      w,
		Frequencies:   []float64{20e6, 40e6, 80e6},
		MaxProcessors: 7,
		MinProcessors: 0,
	}
	for _, s := range trace.Scenarios() {
		static, err := Run(scenarioConfig(t, s))
		if err != nil {
			t.Fatal(err)
		}
		proposed, err := dpm.Simulate(dpm.SimConfig{
			Manager: dpm.Config{
				Charging:      s.Charging,
				EventRate:     s.Usage,
				CapacityMax:   s.CapacityMax,
				CapacityMin:   s.CapacityMin,
				InitialCharge: s.InitialCharge,
				Params:        pcfg,
			},
			Periods: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		pBad := proposed.Battery.Wasted + proposed.Battery.Undersupplied
		sBad := static.Battery.Wasted + static.Battery.Undersupplied
		if pBad*2 > sBad {
			t.Errorf("scenario %s: proposed %.2f J (wasted %.2f + under %.2f) not ≥2× better than static %.2f J (wasted %.2f + under %.2f)",
				s.Name, pBad, proposed.Battery.Wasted, proposed.Battery.Undersupplied,
				sBad, static.Battery.Wasted, static.Battery.Undersupplied)
		}
	}
}
