// Package alloc implements the paper's initial power-allocation
// computation (§4.1): the weighted power-usage function (Eq. 7), the
// supply/demand balancing constant (Eq. 8), the surplus function and
// battery trajectory (Eq. 9–10), and Algorithm 1, which reshapes the
// trajectory so it never leaves the battery's feasible band
// [Cmin, Cmax].
//
// All computation happens on uniform slot grids of width τ
// (schedule.Grid): the paper updates parameters only at multiples of
// τ, and its Tables 2 and 4 print exactly these per-slot allocations
// and their running integrals.
package alloc

import (
	"context"
	"fmt"
	"math"
	"sync"

	"dpm/internal/obs"
	"dpm/internal/schedule"
)

// Inputs bundles everything §4.1 needs.
type Inputs struct {
	// Charging is the expected charging schedule c(t) in watts per
	// slot.
	Charging *schedule.Grid
	// EventRate is the expected event-rate schedule u(t); only its
	// shape matters because Eq. 8 rescales it to the supply.
	EventRate *schedule.Grid
	// Weight is the user weight function w(t); nil means uniform.
	Weight *schedule.Grid
	// CapacityMax is Cmax in joules.
	CapacityMax float64
	// CapacityMin is Cmin in joules.
	CapacityMin float64
	// InitialCharge is the battery energy at t = 0 in joules. It is
	// clamped into [CapacityMin, CapacityMax].
	InitialCharge float64
	// MaxIterations bounds the Algorithm 1 driver; 0 means the
	// default of 16. The paper's scenarios converge in five.
	MaxIterations int
	// Tolerance is the feasibility slack in joules; 0 means 1e-9.
	Tolerance float64
	// Margin shrinks the band the planner targets, as a fraction of
	// (Cmax − Cmin) kept clear at each end (0 ≤ Margin < 0.5).
	// Algorithm 1 pins trajectory peaks exactly onto the capacity
	// bounds, which leaves zero headroom for forecast error; a
	// margin of e.g. 0.1 trades a little utilization for robustness
	// against supply jitter. The paper plans to the raw bounds
	// (Margin 0).
	Margin float64
	// Strategy selects how Algorithm 1 reshapes each violating arc.
	Strategy AdjustStrategy
}

// AdjustStrategy is the arc-reshaping flavor of Algorithm 1.
type AdjustStrategy int

const (
	// RemapProportional is the paper's formula: trajectory values on
	// the arc map affinely by *value*, preserving the stored-energy
	// shape ("the amount of stored energy depends on the original
	// power allocation").
	RemapProportional AdjustStrategy = iota
	// RemapEven is the paper's stated alternative ("the power can be
	// evenly distributed"): the trajectory moves linearly in *time*
	// between the pinned endpoints, which spreads the power change
	// uniformly over the arc's slots.
	RemapEven
)

// String names the strategy.
func (s AdjustStrategy) String() string {
	if s == RemapEven {
		return "even"
	}
	return "proportional"
}

// Iteration records one round of the Algorithm 1 driver, matching a
// row pair of the paper's Tables 2/4: the allocation in watts and
// the trajectory (running integral of the surplus) at slot
// boundaries.
type Iteration struct {
	// Allocation is the power allocation for this round, in watts
	// per slot.
	Allocation *schedule.Grid
	// Trajectory is the battery energy at the Len+1 slot
	// boundaries, in joules.
	Trajectory []float64
	// Violations counts trajectory extrema outside [Cmin, Cmax]
	// before this round's adjustment.
	Violations int
}

// Result is the outcome of Compute.
type Result struct {
	// Allocation is the final feasible (or best-effort) power
	// allocation in watts per slot.
	Allocation *schedule.Grid
	// Trajectory is the battery energy at slot boundaries under
	// Allocation.
	Trajectory []float64
	// Iterations holds the full history, first round first.
	Iterations []Iteration
	// Feasible reports whether the final trajectory stays within
	// [Cmin, Cmax] (within Tolerance).
	Feasible bool
}

// WPUF returns the weighted power-usage function u(t)·w(t) of Eq. 7.
// A nil weight means w ≡ 1.
func WPUF(eventRate, weight *schedule.Grid) *schedule.Grid {
	if weight == nil {
		return eventRate.Clone()
	}
	return eventRate.Mul(weight)
}

// Balance scales wpuf so its period energy equals the charging
// schedule's (Eq. 8): u_new = wpuf · ∫c / ∫wpuf. It returns an error
// if wpuf integrates to zero (nothing to scale) while the supply does
// not.
func Balance(wpuf, charging *schedule.Grid) (*schedule.Grid, error) {
	demand := wpuf.Total()
	supply := charging.Total()
	if demand <= 0 {
		if supply == 0 {
			return wpuf.Clone(), nil
		}
		return nil, fmt.Errorf("alloc: weighted usage integrates to %g; cannot balance against supply %g", demand, supply)
	}
	return wpuf.Scale(supply / demand), nil
}

// Surplus returns c − alloc per slot (Eq. 9), the net power into the
// battery.
func Surplus(charging, alloc *schedule.Grid) *schedule.Grid {
	return charging.Sub(alloc)
}

// Trajectory returns the battery energy at slot boundaries (Eq. 10):
// P(t) = initial + ∫₀ᵗ (c − alloc). The result has Len+1 entries.
func Trajectory(charging, alloc *schedule.Grid, initial float64) []float64 {
	return Surplus(charging, alloc).Cumulative(initial)
}

// extremum is a circular local extremum of the trajectory that
// violates a capacity bound.
type extremum struct {
	index int     // slot-boundary index in [0, n)
	value float64 // trajectory value there
	high  bool    // true: local max above Cmax; false: local min below Cmin
}

// computeScratch holds the per-call working buffers of the
// Algorithm 1 driver. Every slice here is transient — overwritten on
// each use and never retained by a Result — so pooling them makes
// the plan hot path allocate only what it actually returns (the
// iteration history and the final allocation).
type computeScratch struct {
	surplus []float64
	orig    []float64
	work    []float64
	ext     []extremum
	deduped []extremum
	anchors []anchorPoint
}

var scratchPool = sync.Pool{New: func() any { return new(computeScratch) }}

// floatsBuf returns s resized to n entries, reallocating only when
// the capacity is insufficient. Contents are unspecified.
func floatsBuf(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// surplusTrajectory fuses the per-iteration rescale and integrate
// passes into one columnar sweep: surplus[i] = charging[i] − alloc[i]
// is written in place while the running integral accumulates into a
// freshly allocated trajectory (retained by the iteration history).
// One pass over three contiguous []float64 columns instead of a
// surplus loop followed by a separate cumulative pass; the
// accumulator carries exactly the out[i] value the two-pass form read
// back, so results are bit-identical.
func surplusTrajectory(surplus, charging, allocv []float64, initial, step float64) []float64 {
	out := make([]float64, len(surplus)+1)
	out[0] = initial
	acc := initial
	for i := range surplus {
		v := charging[i] - allocv[i]
		surplus[i] = v
		acc += v * step
		out[i+1] = acc
	}
	return out
}

// findViolations locates the violating local extrema of the
// trajectory (Algorithm 1, lines 1–2), appending to dst. The
// trajectory is treated circularly over n slots: boundary k's left
// derivative is the surplus of slot (k−1+n) mod n and its right
// derivative that of slot k mod n. Endpoints participate through the
// wraparound, which is what lines 19–20 of the paper's listing
// arrange.
func findViolations(dst []extremum, traj []float64, surplus []float64, cmin, cmax, tol float64) []extremum {
	n := len(surplus)
	out := dst
	// The left derivative of boundary k is the right derivative of
	// boundary k−1: carry it across iterations instead of re-indexing
	// with a modulus, so the scan is one branch-light pass over the
	// contiguous surplus column.
	left := surplus[n-1]
	for k := 0; k < n; k++ {
		right := surplus[k]
		v := traj[k]
		isMax := left >= 0 && right <= 0
		isMin := left <= 0 && right >= 0
		if left == 0 && right == 0 {
			// Flat plateau: count it as whichever bound it breaks.
			isMax, isMin = v > cmax, v < cmin
		}
		switch {
		case isMax && v > cmax+tol:
			out = append(out, extremum{index: k, value: v, high: true})
		case isMin && v < cmin-tol:
			out = append(out, extremum{index: k, value: v, high: false})
		}
		left = right
	}
	return out
}

// dedupe applies Algorithm 1 lines 3–7 circularly: of consecutive
// violations of the same kind, keep the more extreme one (the larger
// of two highs, the smaller of two lows). The result alternates
// high/low around the circle.
func dedupe(ext []extremum) []extremum {
	return dedupeInto(make([]extremum, 0, len(ext)), ext)
}

// dedupeInto is dedupe writing into dst (which must not overlap ext).
func dedupeInto(dst, ext []extremum) []extremum {
	if len(ext) < 2 {
		return append(dst, ext...)
	}
	out := dst
	for _, e := range ext {
		if len(out) > 0 && out[len(out)-1].high == e.high {
			last := &out[len(out)-1]
			if (e.high && e.value > last.value) || (!e.high && e.value < last.value) {
				*last = e
			}
			continue
		}
		out = append(out, e)
	}
	// Circular boundary: first and last may now agree in kind.
	for len(out) >= 2 && out[0].high == out[len(out)-1].high {
		first, last := out[0], out[len(out)-1]
		if (first.high && last.value > first.value) || (!first.high && last.value < first.value) {
			out[0] = last
		}
		out = out[:len(out)-1]
	}
	return out
}

// anchorPoint is a trajectory point pinned by the remapping pass:
// violating extrema are pinned to their violated bound, and t = 0 is
// pinned to the (fixed) initial battery charge.
type anchorPoint struct {
	index  int     // slot-boundary index in [0, n)
	value  float64 // original trajectory value
	target float64 // value after remapping
}

// remapArc rewrites work on the circular arc [a.index, b.index) with
// the affine-by-value map of Algorithm 1 lines 13–16 generalized to
// arbitrary endpoint targets: a.value ↦ a.target, b.value ↦ b.target,
// intermediate points proportionally by value (RemapProportional) or
// linearly in time (RemapEven, which spreads the power change evenly
// over the arc's slots). Values are read from orig so shared
// endpoints are mapped consistently across arcs. A degenerate value
// span always falls back to time-linear interpolation.
//
// The circular arc is processed as at most two contiguous segments —
// [a.index, a.index+head) and the wrapped tail [0, arcLen−head) —
// with the strategy branch hoisted out of the inner loops, so each
// loop is a branch-light pass over contiguous slices. The per-element
// expression keeps the exact dt·x/span evaluation order of the
// scalar form (the division is not folded into a precomputed scale),
// so remapped trajectories are bit-identical.
func remapArc(work, orig []float64, n int, a, b anchorPoint, strategy AdjustStrategy) {
	span := b.value - a.value
	arcLen := (b.index - a.index + n) % n
	if arcLen == 0 {
		arcLen = n
	}
	head := arcLen
	if a.index+head > n {
		head = n - a.index
	}
	dt := b.target - a.target
	if strategy == RemapProportional && span != 0 {
		at, av := a.target, a.value
		w, o := work[a.index:a.index+head], orig[a.index:a.index+head]
		for i := range w {
			w[i] = at + dt*(o[i]-av)/span
		}
		w, o = work[:arcLen-head], orig[:arcLen-head]
		for i := range w {
			w[i] = at + dt*(o[i]-av)/span
		}
	} else {
		at, fl := a.target, float64(arcLen)
		w := work[a.index : a.index+head]
		pos := 0
		for i := range w {
			w[i] = at + dt*float64(pos)/fl
			pos++
		}
		w = work[:arcLen-head]
		for i := range w {
			w[i] = at + dt*float64(pos)/fl
			pos++
		}
	}
}

// AdjustOnce performs one pass of Algorithm 1 with the paper's
// proportional remapping. See AdjustOnceStrategy.
func AdjustOnce(charging, alloc *schedule.Grid, initial, cmin, cmax, tol float64) (*schedule.Grid, int) {
	return AdjustOnceStrategy(charging, alloc, initial, cmin, cmax, tol, RemapProportional)
}

// AdjustOnceStrategy performs one pass of Algorithm 1 on the
// allocation: compute the trajectory, locate violating extrema, pin
// each to the bound it violates (and t = 0 to the fixed initial
// charge), remap every arc between consecutive pinned points with
// the chosen strategy, and recover the implied allocation. It
// returns the adjusted allocation and the number of violations found
// (0 means the input was already feasible and is returned unchanged).
func AdjustOnceStrategy(charging, alloc *schedule.Grid, initial, cmin, cmax, tol float64, strategy AdjustStrategy) (*schedule.Grid, int) {
	sc := scratchPool.Get().(*computeScratch)
	defer scratchPool.Put(sc)
	n := alloc.Len()
	sc.surplus = floatsBuf(sc.surplus, n)
	traj := surplusTrajectory(sc.surplus, charging.Values, alloc.Values, initial, alloc.Step)
	out, nViol := adjustWith(sc, charging, alloc, traj, cmin, cmax, tol, strategy)
	if out == nil {
		return alloc.Clone(), 0
	}
	return out, nViol
}

// adjustWith is the scratch-buffer core of AdjustOnceStrategy: the
// caller supplies the surplus (in sc.surplus) and trajectory it
// already computed, and a nil grid comes back when there is nothing
// to adjust — the Compute driver's common warm-path case — so the
// feasible round allocates nothing.
func adjustWith(sc *computeScratch, charging, alloc *schedule.Grid, traj []float64, cmin, cmax, tol float64, strategy AdjustStrategy) (*schedule.Grid, int) {
	n := alloc.Len()
	sc.ext = findViolations(sc.ext[:0], traj, sc.surplus, cmin, cmax, tol)
	sc.deduped = dedupeInto(sc.deduped[:0], sc.ext)
	ext := sc.deduped
	if len(ext) == 0 {
		return nil, 0
	}
	nViol := len(ext)

	sc.orig = append(sc.orig[:0], traj[:n]...) // circular view
	sc.work = append(sc.work[:0], sc.orig...)
	orig, work := sc.orig, sc.work

	// Build the pinned points: each violator goes to its bound; t = 0
	// stays at the battery's actual starting charge (clamped into the
	// band) because the plan cannot rewrite the present.
	anchors := sc.anchors[:0]
	haveZero := false
	for _, e := range ext {
		target := cmax
		if !e.high {
			target = cmin
		}
		if e.index == 0 {
			haveZero = true
			target = math.Min(math.Max(orig[0], cmin), cmax)
		}
		anchors = append(anchors, anchorPoint{index: e.index, value: e.value, target: target})
	}
	if !haveZero {
		anchors = append(anchors, anchorPoint{
			index:  0,
			value:  orig[0],
			target: math.Min(math.Max(orig[0], cmin), cmax),
		})
	}
	sc.anchors = anchors
	// Insertion sort by boundary index (indices are unique, so the
	// order is total); inlined to keep sort.Slice's closure allocation
	// off the per-iteration path.
	for i := 1; i < len(anchors); i++ {
		for j := i; j > 0 && anchors[j].index < anchors[j-1].index; j-- {
			anchors[j], anchors[j-1] = anchors[j-1], anchors[j]
		}
	}

	if len(anchors) == 1 {
		// Only t = 0 is pinned and it is itself the violator (a flat
		// out-of-band trajectory): clamp everything into the band.
		for k := range work {
			work[k] = math.Min(math.Max(work[k], cmin), cmax)
		}
	} else {
		for i := range anchors {
			remapArc(work, orig, n, anchors[i], anchors[(i+1)%len(anchors)], strategy)
		}
	}

	// Recover the allocation from the reshaped trajectory:
	// alloc[i] = c[i] − (P[i+1] − P[i])/τ, circularly. The wraparound
	// slot is peeled off so the main loop indexes contiguously with no
	// modulus.
	out := &schedule.Grid{Step: alloc.Step, Values: make([]float64, n)}
	ov, cv, step := out.Values, charging.Values, alloc.Step
	for i := 0; i < n-1; i++ {
		ov[i] = cv[i] - (work[i+1]-work[i])/step
	}
	ov[n-1] = cv[n-1] - (work[0]-work[n-1])/step
	out.ClampNonNegative()
	return out, nViol
}

// Repair returns a feasible allocation derived from alloc by a
// single greedy forward pass: each slot's target charge is clamped
// into the feasible window [Cmin, min(Cmax, p + c·τ)] (the upper arm
// reflects that the allocation cannot be negative) and the slot's
// power recovered from the clamped step. Because charging power is
// non-negative and the initial charge is within the band, the result
// is always feasible. The paper notes "other ways of adjusting can
// be used" (§4.1); this is the projection the Compute driver falls
// back on if the extremum-remapping rounds leave residual
// violations.
func Repair(charging, alloc *schedule.Grid, initial, cmin, cmax float64) *schedule.Grid {
	out := alloc.Clone()
	p := math.Min(math.Max(initial, cmin), cmax)
	for i := range out.Values {
		if out.Values[i] < 0 {
			out.Values[i] = 0
		}
		desired := p + (charging.Values[i]-out.Values[i])*out.Step
		upper := math.Min(cmax, p+charging.Values[i]*out.Step)
		next := math.Min(math.Max(desired, cmin), upper)
		out.Values[i] = charging.Values[i] - (next-p)/out.Step
		p = next
	}
	return out
}

// ResultFromPlan wraps an externally computed per-slot power plan in
// the canonical Result shape: the battery trajectory under the plan
// and its feasibility against [cmin, cmax]. Alternative planner
// backends (internal/strategy) and managers seeded with an injected
// plan (dpm.Config.InitialPlan) use it so every downstream consumer —
// params selection, simulation, replay — sees exactly the structure
// Compute produces. The initial charge is clamped into the band, and
// tol 0 means the Compute default of 1e-9 J. The plan grid is
// retained, not copied.
func ResultFromPlan(charging, plan *schedule.Grid, initial, cmin, cmax, tol float64) *Result {
	if tol == 0 {
		tol = 1e-9
	}
	initial = math.Min(math.Max(initial, cmin), cmax)
	traj := Trajectory(charging, plan, initial)
	return &Result{
		Allocation: plan,
		Trajectory: traj,
		Feasible:   feasible(traj, cmin, cmax, tol),
	}
}

// feasible reports whether every trajectory point lies within
// [cmin−tol, cmax+tol].
func feasible(traj []float64, cmin, cmax, tol float64) bool {
	for _, v := range traj {
		if v < cmin-tol || v > cmax+tol {
			return false
		}
	}
	return true
}

// Compute runs the full §4.1 pipeline: WPUF → balancing → iterated
// Algorithm 1 until the trajectory is feasible or MaxIterations is
// reached. The returned history reproduces the paper's Tables 2/4.
func Compute(in Inputs) (*Result, error) {
	return ComputeContext(context.Background(), in)
}

// ComputeContext is Compute with cooperative cancellation: ctx is
// polled once per Algorithm 1 iteration and the computation aborts
// with ctx.Err() when it is cancelled, so a server can bound a
// planning request by deadline.
//
// Telemetry: the run is wrapped in an "alloc.Compute" span and each
// driver round in an "alloc.iteration" span annotated with its
// violation count (internal/obs). Without a Recorder on ctx the span
// calls are a nil fast path — one context lookup per site — so
// library callers pay essentially nothing.
func ComputeContext(ctx context.Context, in Inputs) (*Result, error) {
	ctx, span := obs.StartSpan(ctx, "alloc.Compute")
	defer span.End()
	if in.Charging == nil || in.EventRate == nil {
		return nil, fmt.Errorf("alloc: charging and event-rate grids are required")
	}
	if in.CapacityMax <= in.CapacityMin {
		return nil, fmt.Errorf("alloc: Cmax %g must exceed Cmin %g", in.CapacityMax, in.CapacityMin)
	}
	if in.Margin < 0 || in.Margin >= 0.5 {
		return nil, fmt.Errorf("alloc: margin %g outside [0, 0.5)", in.Margin)
	}
	if in.Margin > 0 {
		band := in.CapacityMax - in.CapacityMin
		in.CapacityMin += in.Margin * band
		in.CapacityMax -= in.Margin * band
	}
	maxIter := in.MaxIterations
	if maxIter == 0 {
		maxIter = 16
	}
	tol := in.Tolerance
	if tol == 0 {
		tol = 1e-9
	}
	initial := math.Min(math.Max(in.InitialCharge, in.CapacityMin), in.CapacityMax)

	// Fused Eq. 7 + Eq. 8: the weighted usage grid is freshly built
	// either way, so the balancing rescale can run in place on it
	// instead of cloning a second time. One multiply per slot, exactly
	// as Scale does, so the values are bit-identical to the
	// WPUF → Balance composition.
	var current *schedule.Grid
	if in.Weight == nil {
		current = in.EventRate.Clone()
	} else {
		current = in.EventRate.Mul(in.Weight)
	}
	demand := current.Total()
	supply := in.Charging.Total()
	if demand <= 0 {
		if supply != 0 {
			return nil, fmt.Errorf("alloc: weighted usage integrates to %g; cannot balance against supply %g", demand, supply)
		}
	} else {
		k := supply / demand
		for i := range current.Values {
			current.Values[i] *= k
		}
	}

	n := in.Charging.Len()
	if in.Charging.Step != current.Step || n != current.Len() {
		// Mirror the panic the grid algebra raised here before the
		// loop went scratch-based.
		panic(fmt.Sprintf("schedule: incompatible grids (%d slots × %g s vs %d slots × %g s)",
			n, in.Charging.Step, current.Len(), current.Step))
	}

	sc := scratchPool.Get().(*computeScratch)
	defer scratchPool.Put(sc)

	res := &Result{Iterations: make([]Iteration, 0, 4)}
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		_, ispan := obs.StartSpan(ctx, "alloc.iteration")
		sc.surplus = floatsBuf(sc.surplus, n)
		traj := surplusTrajectory(sc.surplus, in.Charging.Values, current.Values, initial, in.Charging.Step)
		adjusted, nViol := adjustWith(sc, in.Charging, current, traj,
			in.CapacityMin, in.CapacityMax, tol, in.Strategy)
		ispan.SetAttr("iteration", iter)
		ispan.SetAttr("violations", nViol)
		ispan.End()
		// The history takes ownership of current — no defensive clone.
		// Each round either replaces current with the freshly built
		// adjusted grid or clones it below, so a recorded grid is
		// never written again.
		res.Iterations = append(res.Iterations, Iteration{
			Allocation: current,
			Trajectory: traj,
			Violations: nViol,
		})
		if nViol == 0 && feasible(traj, in.CapacityMin, in.CapacityMax, tol) {
			res.Allocation = current.Clone()
			res.Trajectory = traj
			res.Feasible = true
			span.SetAttr("iterations", len(res.Iterations))
			span.SetAttr("feasible", true)
			return res, nil
		}
		if adjusted != nil {
			current = adjusted
		} else {
			// No violating extrema yet still infeasible (an in-band
			// plateau within tolerance of a bound): iterate on a copy
			// so the history entry stays immutable.
			current = current.Clone()
		}
	}
	// The remapping rounds did not converge: project onto the
	// feasible set directly.
	_, rspan := obs.StartSpan(ctx, "alloc.repair")
	current = Repair(in.Charging, current, initial, in.CapacityMin, in.CapacityMax)
	rspan.End()
	sc.surplus = floatsBuf(sc.surplus, n)
	traj := surplusTrajectory(sc.surplus, in.Charging.Values, current.Values, initial, in.Charging.Step)
	res.Iterations = append(res.Iterations, Iteration{
		Allocation: current,
		Trajectory: traj,
		Violations: 0,
	})
	res.Allocation = current.Clone()
	res.Trajectory = traj
	res.Feasible = feasible(traj, in.CapacityMin, in.CapacityMax, tol)
	span.SetAttr("iterations", len(res.Iterations))
	span.SetAttr("feasible", res.Feasible)
	return res, nil
}
