package alloc_test

import (
	"fmt"

	"dpm/internal/alloc"
	"dpm/internal/schedule"
)

// Plan power for a half-sunlit orbit: the raw balanced demand would
// overflow the battery mid-orbit and drain it before dawn, so
// Algorithm 1 reshapes it.
func ExampleCompute() {
	charging := schedule.NewGrid(1, []float64{4, 4, 4, 4, 0, 0, 0, 0})
	demand := schedule.NewGrid(1, []float64{1, 1, 1, 1, 3, 3, 3, 3})
	res, err := alloc.Compute(alloc.Inputs{
		Charging:      charging,
		EventRate:     demand,
		CapacityMax:   6,
		CapacityMin:   1,
		InitialCharge: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("feasible after %d iterations\n", len(res.Iterations))
	lo, hi := res.Trajectory[0], res.Trajectory[0]
	for _, v := range res.Trajectory {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	fmt.Printf("battery stays within [%.1f, %.1f] J of the [1, 6] band\n", lo, hi)
	// Output:
	// feasible after 2 iterations
	// battery stays within [1.0, 6.0] J of the [1, 6] band
}
