package alloc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dpm/internal/schedule"
	"dpm/internal/trace"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func scenarioInputs(s trace.Scenario) Inputs {
	return Inputs{
		Charging:      s.Charging,
		EventRate:     s.Usage,
		CapacityMax:   s.CapacityMax,
		CapacityMin:   s.CapacityMin,
		InitialCharge: s.InitialCharge,
	}
}

func TestWPUF(t *testing.T) {
	u := schedule.NewGrid(1, []float64{1, 2, 3})
	w := schedule.NewGrid(1, []float64{2, 2, 0})
	got := WPUF(u, w)
	want := []float64{2, 4, 0}
	for i := range want {
		if got.Values[i] != want[i] {
			t.Errorf("WPUF[%d] = %g, want %g", i, got.Values[i], want[i])
		}
	}
}

func TestWPUFNilWeight(t *testing.T) {
	u := schedule.NewGrid(1, []float64{1, 2})
	got := WPUF(u, nil)
	if got.Values[0] != 1 || got.Values[1] != 2 {
		t.Errorf("nil weight must mean w≡1: %v", got.Values)
	}
	// Must be a copy, not an alias.
	got.Values[0] = 99
	if u.Values[0] != 1 {
		t.Error("WPUF with nil weight must clone")
	}
}

func TestBalanceEquation8(t *testing.T) {
	wpuf := schedule.NewGrid(1, []float64{1, 3})
	charging := schedule.NewGrid(1, []float64{4, 4})
	balanced, err := Balance(wpuf, charging)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(balanced.Total(), charging.Total(), 1e-9) {
		t.Errorf("balanced total %g != supply total %g", balanced.Total(), charging.Total())
	}
	// Shape is preserved: ratio 1:3.
	if !approx(balanced.Values[1], 3*balanced.Values[0], 1e-9) {
		t.Errorf("balance must preserve shape: %v", balanced.Values)
	}
}

func TestBalanceZeroDemand(t *testing.T) {
	wpuf := schedule.NewGrid(1, []float64{0, 0})
	zeroSupply := schedule.NewGrid(1, []float64{0, 0})
	if _, err := Balance(wpuf, zeroSupply); err != nil {
		t.Errorf("zero demand + zero supply is fine: %v", err)
	}
	supply := schedule.NewGrid(1, []float64{1, 1})
	if _, err := Balance(wpuf, supply); err == nil {
		t.Error("zero demand with non-zero supply must error")
	}
}

func TestTrajectoryEquation10(t *testing.T) {
	c := schedule.NewGrid(2, []float64{3, 1})
	u := schedule.NewGrid(2, []float64{1, 3})
	traj := Trajectory(c, u, 5)
	// Surplus: +2 then −2 over 2-second slots.
	want := []float64{5, 9, 5}
	for i := range want {
		if !approx(traj[i], want[i], 1e-12) {
			t.Errorf("traj[%d] = %g, want %g", i, traj[i], want[i])
		}
	}
}

func TestAdjustOnceNoViolations(t *testing.T) {
	c := schedule.NewGrid(1, []float64{1, 1})
	u := schedule.NewGrid(1, []float64{1, 1})
	adj, n := AdjustOnce(c, u, 5, 0, 10, 1e-9)
	if n != 0 {
		t.Errorf("flat feasible trajectory reported %d violations", n)
	}
	if !adj.Equal(u, 1e-12) {
		t.Error("feasible allocation must be returned unchanged")
	}
}

func TestAdjustOnceFixesOvershoot(t *testing.T) {
	// Charge hard for 4 slots, then drain hard: trajectory swings to
	// +8 then back to 0 with Cmax = 4 → one high violation mid-period.
	c := schedule.NewGrid(1, []float64{2, 2, 2, 2, 0, 0, 0, 0})
	u := schedule.NewGrid(1, []float64{0, 0, 0, 0, 2, 2, 2, 2})
	cmin, cmax := 0.0, 4.0
	adj, n := AdjustOnce(c, u, 0, cmin, cmax, 1e-9)
	if n == 0 {
		t.Fatal("expected a violation")
	}
	traj := Trajectory(c, adj, 0)
	for i, v := range traj {
		if v > cmax+1e-6 || v < cmin-1e-6 {
			t.Errorf("adjusted traj[%d] = %g outside [%g, %g]", i, v, cmin, cmax)
		}
	}
}

func TestComputeScenarioIFeasible(t *testing.T) {
	res, err := Compute(scenarioInputs(trace.ScenarioI()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("scenario I must converge; final trajectory %v", res.Trajectory)
	}
	s := trace.ScenarioI()
	for i, v := range res.Trajectory {
		if v < s.CapacityMin-1e-6 || v > s.CapacityMax+1e-6 {
			t.Errorf("traj[%d] = %g outside [%g, %g]", i, v, s.CapacityMin, s.CapacityMax)
		}
	}
	// The paper converges in five iterations; allow some slack but
	// demand the same order of magnitude.
	if len(res.Iterations) > 8 {
		t.Errorf("scenario I took %d iterations; paper takes 5", len(res.Iterations))
	}
}

func TestComputeScenarioIIFeasible(t *testing.T) {
	res, err := Compute(scenarioInputs(trace.ScenarioII()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("scenario II must converge; final trajectory %v", res.Trajectory)
	}
	if len(res.Iterations) > 8 {
		t.Errorf("scenario II took %d iterations; paper takes 5", len(res.Iterations))
	}
}

func TestComputeEnergyRoughlyBalanced(t *testing.T) {
	// The feasible allocation should still spend roughly the supplied
	// energy (that is the whole point of maximizing utilization).
	for _, s := range trace.Scenarios() {
		res, err := Compute(scenarioInputs(s))
		if err != nil {
			t.Fatal(err)
		}
		supply := s.Charging.Total()
		alloc := res.Allocation.Total()
		if alloc < 0.7*supply || alloc > 1.3*supply {
			t.Errorf("scenario %s: allocation %g J vs supply %g J drifted too far", s.Name, alloc, supply)
		}
	}
}

func TestComputeFirstIterationIsBalancedWPUF(t *testing.T) {
	s := trace.ScenarioI()
	res, err := Compute(scenarioInputs(s))
	if err != nil {
		t.Fatal(err)
	}
	first := res.Iterations[0].Allocation
	// Eq. 8: first iteration's allocation is the usage shape scaled
	// to the supply total.
	wantScale := s.Charging.Total() / s.Usage.Total()
	for i := range first.Values {
		if !approx(first.Values[i], s.Usage.Values[i]*wantScale, 1e-9) {
			t.Errorf("iteration-1 slot %d = %g, want scaled usage %g",
				i, first.Values[i], s.Usage.Values[i]*wantScale)
		}
	}
}

func TestComputeValidation(t *testing.T) {
	s := trace.ScenarioI()
	if _, err := Compute(Inputs{EventRate: s.Usage, CapacityMax: 1}); err == nil {
		t.Error("missing charging grid must error")
	}
	if _, err := Compute(Inputs{Charging: s.Charging, CapacityMax: 1}); err == nil {
		t.Error("missing event-rate grid must error")
	}
	in := scenarioInputs(s)
	in.CapacityMax = in.CapacityMin
	if _, err := Compute(in); err == nil {
		t.Error("Cmax <= Cmin must error")
	}
}

func TestComputeAllocationsNonNegative(t *testing.T) {
	for _, s := range trace.Scenarios() {
		res, err := Compute(scenarioInputs(s))
		if err != nil {
			t.Fatal(err)
		}
		if res.Allocation.Min() < 0 {
			t.Errorf("scenario %s: negative allocation %g", s.Name, res.Allocation.Min())
		}
	}
}

func TestDedupeAlternates(t *testing.T) {
	ext := []extremum{
		{index: 1, value: -2, high: false},
		{index: 3, value: -5, high: false}, // more extreme low: keep
		{index: 5, value: 12, high: true},
		{index: 7, value: 10, high: true}, // less extreme high: drop
	}
	out := dedupe(ext)
	if len(out) != 2 {
		t.Fatalf("dedupe kept %d, want 2: %+v", len(out), out)
	}
	if out[0].value != -5 || out[1].value != 12 {
		t.Errorf("dedupe kept wrong extrema: %+v", out)
	}
}

func TestDedupeCircularBoundary(t *testing.T) {
	// First and last are both highs: circular dedupe must merge them.
	ext := []extremum{
		{index: 0, value: 8, high: true},
		{index: 4, value: -1, high: false},
		{index: 9, value: 11, high: true},
	}
	out := dedupe(ext)
	if len(out) != 2 {
		t.Fatalf("circular dedupe kept %d, want 2: %+v", len(out), out)
	}
	for _, e := range out {
		if e.high && e.value != 11 {
			t.Errorf("kept the weaker high: %+v", out)
		}
	}
}

// Property: for random feasible-by-construction problems, Compute's
// result never reports Feasible with an out-of-band trajectory, and
// the allocation is always non-negative.
func TestComputeInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(12)
		c := make([]float64, n)
		u := make([]float64, n)
		for i := range c {
			c[i] = 3 * rng.Float64()
			u[i] = 3 * rng.Float64()
		}
		in := Inputs{
			Charging:      schedule.NewGrid(4.8, c),
			EventRate:     schedule.NewGrid(4.8, u),
			CapacityMax:   20,
			CapacityMin:   0.5,
			InitialCharge: 0.5 + 19*rng.Float64(),
		}
		res, err := Compute(in)
		if err != nil {
			// Only zero-demand inputs may error.
			total := 0.0
			for _, v := range u {
				total += v
			}
			return total == 0
		}
		if res.Allocation.Min() < 0 {
			return false
		}
		if res.Feasible {
			for _, v := range res.Trajectory {
				if v < in.CapacityMin-1e-6 || v > in.CapacityMax+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: iterating AdjustOnce weakly reduces the worst violation.
func TestAdjustReducesWorstViolation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		c := make([]float64, n)
		u := make([]float64, n)
		for i := range c {
			c[i] = 4 * rng.Float64()
		}
		// Balance u to c so the trajectory is periodic.
		total := 0.0
		for _, v := range c {
			total += v
		}
		for i := range u {
			u[i] = rng.Float64()
		}
		ut := 0.0
		for _, v := range u {
			ut += v
		}
		if ut == 0 || total == 0 {
			return true
		}
		for i := range u {
			u[i] *= total / ut
		}
		cg := schedule.NewGrid(1, c)
		ug := schedule.NewGrid(1, u)
		cmin, cmax := 0.5, 4.0
		before := worstViolation(Trajectory(cg, ug, 1), cmin, cmax)
		adj, _ := AdjustOnce(cg, ug, 1, cmin, cmax, 1e-9)
		after := worstViolation(Trajectory(cg, adj, 1), cmin, cmax)
		return after <= before+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func worstViolation(traj []float64, cmin, cmax float64) float64 {
	worst := 0.0
	for _, v := range traj {
		if v > cmax {
			worst = math.Max(worst, v-cmax)
		}
		if v < cmin {
			worst = math.Max(worst, cmin-v)
		}
	}
	return worst
}

func TestRepairProducesFeasible(t *testing.T) {
	// A deliberately infeasible allocation: draw everything up front,
	// charge arrives later.
	c := schedule.NewGrid(1, []float64{0, 0, 4, 4})
	a := schedule.NewGrid(1, []float64{4, 4, 0, 0})
	cmin, cmax := 0.5, 3.0
	repaired := Repair(c, a, 2.0, cmin, cmax)
	traj := Trajectory(c, repaired, 2.0)
	for i, v := range traj {
		if v < cmin-1e-9 || v > cmax+1e-9 {
			t.Errorf("repaired traj[%d] = %g outside [%g, %g]", i, v, cmin, cmax)
		}
	}
	if repaired.Min() < 0 {
		t.Errorf("repaired allocation negative: %v", repaired.Values)
	}
}

func TestRepairClampsNegativeInput(t *testing.T) {
	c := schedule.NewGrid(1, []float64{1, 1})
	a := schedule.NewGrid(1, []float64{-2, 1})
	repaired := Repair(c, a, 1, 0.5, 3)
	if repaired.Min() < 0 {
		t.Errorf("negative input slot survived: %v", repaired.Values)
	}
}

func TestRepairPropertyAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(16)
		c := make([]float64, n)
		a := make([]float64, n)
		for i := range c {
			c[i] = 5 * rng.Float64()
			a[i] = 5 * rng.Float64()
		}
		cmin := 0.2 + rng.Float64()
		cmax := cmin + 1 + 5*rng.Float64()
		initial := cmin + (cmax-cmin)*rng.Float64()
		cg := schedule.NewGrid(2, c)
		ag := schedule.NewGrid(2, a)
		repaired := Repair(cg, ag, initial, cmin, cmax)
		for _, v := range Trajectory(cg, repaired, initial) {
			if v < cmin-1e-6 || v > cmax+1e-6 {
				return false
			}
		}
		return repaired.Min() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestComputeFallsBackToRepair(t *testing.T) {
	// One remapping round with MaxIterations=1 rarely suffices for a
	// wild profile; the driver must fall back to Repair and still
	// return a feasible plan.
	rng := rand.New(rand.NewSource(7))
	n := 16
	c := make([]float64, n)
	u := make([]float64, n)
	for i := range c {
		c[i] = 6 * rng.Float64()
		u[i] = 6 * rng.Float64()
	}
	in := Inputs{
		Charging:      schedule.NewGrid(1, c),
		EventRate:     schedule.NewGrid(1, u),
		CapacityMax:   2.0, // very tight band forces violations
		CapacityMin:   0.5,
		InitialCharge: 1.0,
		MaxIterations: 1,
	}
	res, err := Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("repair fallback must be feasible; traj %v", res.Trajectory)
	}
	// The fallback shows up as one extra iteration record.
	if len(res.Iterations) != 2 {
		t.Errorf("iterations = %d, want 1 remap + 1 repair", len(res.Iterations))
	}
}

func TestComputeRespectsMaxIterations(t *testing.T) {
	in := scenarioInputs(trace.ScenarioI())
	in.MaxIterations = 1
	res, err := Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) > 2 {
		t.Errorf("iterations = %d with MaxIterations 1 (+repair)", len(res.Iterations))
	}
	if !res.Feasible {
		t.Error("repair fallback must deliver feasibility")
	}
}

func TestAdjustStrategyString(t *testing.T) {
	if RemapProportional.String() != "proportional" || RemapEven.String() != "even" {
		t.Error("strategy names wrong")
	}
}

func TestEvenStrategyAlsoConverges(t *testing.T) {
	for _, s := range trace.Scenarios() {
		in := scenarioInputs(s)
		in.Strategy = RemapEven
		res, err := Compute(in)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Errorf("scenario %s infeasible under even strategy", s.Name)
		}
		for i, v := range res.Trajectory {
			if v < s.CapacityMin-1e-6 || v > s.CapacityMax+1e-6 {
				t.Errorf("scenario %s: traj[%d] = %g out of band", s.Name, i, v)
			}
		}
	}
}

func TestStrategiesDifferButAgreeOnEndpoints(t *testing.T) {
	s := trace.ScenarioI()
	in := scenarioInputs(s)
	prop, err := Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Strategy = RemapEven
	even, err := Compute(in)
	if err != nil {
		t.Fatal(err)
	}
	// Different allocations in the middle...
	if prop.Allocation.Equal(even.Allocation, 1e-9) {
		t.Error("strategies unexpectedly identical")
	}
	// ...but both spend roughly the supply.
	supply := s.Charging.Total()
	for name, r := range map[string]*Result{"prop": prop, "even": even} {
		if r.Allocation.Total() < 0.8*supply || r.Allocation.Total() > 1.2*supply {
			t.Errorf("%s: total %g J vs supply %g J", name, r.Allocation.Total(), supply)
		}
	}
}

// §2's weight function: raising a slot's weight must shift allocation
// toward it (relative to the unweighted plan), with the period total
// still balanced to the supply.
func TestWeightShiftsAllocation(t *testing.T) {
	charging := schedule.NewGrid(1, []float64{2, 2, 2, 2, 2, 2, 2, 2})
	usage := schedule.NewGrid(1, []float64{1, 1, 1, 1, 1, 1, 1, 1})
	weight := schedule.NewGrid(1, []float64{1, 1, 1, 3, 3, 1, 1, 1})
	base := Inputs{
		Charging: charging, EventRate: usage,
		CapacityMax: 20, CapacityMin: 1, InitialCharge: 5,
	}
	flat, err := Compute(base)
	if err != nil {
		t.Fatal(err)
	}
	weighted := base
	weighted.Weight = weight
	shaped, err := Compute(weighted)
	if err != nil {
		t.Fatal(err)
	}
	// Weighted slots gain power relative to the flat plan.
	if shaped.Allocation.Values[3] <= flat.Allocation.Values[3] {
		t.Errorf("weighted slot did not gain: %g vs %g",
			shaped.Allocation.Values[3], flat.Allocation.Values[3])
	}
	if shaped.Allocation.Values[0] >= flat.Allocation.Values[0] {
		t.Errorf("unweighted slot did not yield: %g vs %g",
			shaped.Allocation.Values[0], flat.Allocation.Values[0])
	}
	// Totals still balance to the supply.
	if math.Abs(shaped.Allocation.Total()-charging.Total()) > 1e-6 {
		t.Errorf("weighted total %g J != supply %g J", shaped.Allocation.Total(), charging.Total())
	}
}
