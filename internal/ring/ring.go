// Package ring models the PAMA board's interconnect: the eight
// Processor-In-Memory chips sit on a unidirectional ring built from
// two FPGAs (the SLIIC Quick Look board of the paper's §5). Messages
// travel one direction only, store-and-forward per hop, with an
// extra forwarding delay each time they pass through an FPGA. The
// controller uses it to price command delivery; the machine
// simulator asks it for per-destination latencies.
package ring

import "fmt"

// Config describes the ring.
type Config struct {
	// Nodes is the number of processors on the ring.
	Nodes int
	// FPGAs is the number of interconnect FPGAs, spliced evenly
	// between equal runs of processors (PAMA: 2 FPGAs for 8 PIMs).
	FPGAs int
	// IOClockHz is the I/O clock driving transfers (20 MHz on the
	// M32R/D).
	IOClockHz float64
	// WordBits is the link width in bits per I/O clock.
	WordBits int
	// FPGAForwardCycles is the store-and-forward delay inside each
	// FPGA, in I/O clock cycles.
	FPGAForwardCycles int
}

// PAMA returns the paper's board: 8 processors, 2 FPGAs, 20 MHz I/O,
// 32-bit words, 4-cycle FPGA forwarding.
func PAMA() Config {
	return Config{
		Nodes:             8,
		FPGAs:             2,
		IOClockHz:         20e6,
		WordBits:          32,
		FPGAForwardCycles: 4,
	}
}

func (c Config) validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("ring: %d nodes; need at least 2", c.Nodes)
	}
	if c.FPGAs < 0 {
		return fmt.Errorf("ring: negative FPGA count %d", c.FPGAs)
	}
	if c.FPGAs > 0 && c.Nodes%c.FPGAs != 0 {
		return fmt.Errorf("ring: %d FPGAs do not divide %d nodes evenly", c.FPGAs, c.Nodes)
	}
	if c.IOClockHz <= 0 {
		return fmt.Errorf("ring: non-positive I/O clock %g", c.IOClockHz)
	}
	if c.WordBits <= 0 {
		return fmt.Errorf("ring: non-positive word width %d", c.WordBits)
	}
	if c.FPGAForwardCycles < 0 {
		return fmt.Errorf("ring: negative FPGA forwarding %d", c.FPGAForwardCycles)
	}
	return nil
}

// Network is an immutable ring model plus message accounting.
type Network struct {
	cfg      Config
	segment  int // processors between consecutive FPGAs
	messages int
	words    int
	busyTime float64
}

// New validates the configuration and builds the network.
func New(cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg}
	if cfg.FPGAs > 0 {
		n.segment = cfg.Nodes / cfg.FPGAs
	}
	return n, nil
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Hops returns the unidirectional processor-to-processor distance
// from node `from` to node `to` (both in [0, Nodes)).
func (n *Network) Hops(from, to int) int {
	n.checkNode(from)
	n.checkNode(to)
	return (to - from + n.cfg.Nodes) % n.cfg.Nodes
}

// FPGAsCrossed counts the FPGAs a message passes between from and to.
// With FPGAs spliced after positions segment−1, 2·segment−1, …, a
// message crosses one each time its path wraps past such a boundary.
func (n *Network) FPGAsCrossed(from, to int) int {
	n.checkNode(from)
	n.checkNode(to)
	if n.cfg.FPGAs == 0 {
		return 0
	}
	crossed := 0
	hops := n.Hops(from, to)
	for h := 0; h < hops; h++ {
		pos := (from + h) % n.cfg.Nodes
		if (pos+1)%n.segment == 0 {
			crossed++
		}
	}
	return crossed
}

func (n *Network) checkNode(id int) {
	if id < 0 || id >= n.cfg.Nodes {
		panic(fmt.Sprintf("ring: node %d outside [0, %d)", id, n.cfg.Nodes))
	}
}

// wordTime is the transfer time of one word over one hop.
func (n *Network) wordTime() float64 { return 1 / n.cfg.IOClockHz }

// Latency returns the delivery time in seconds for a message of
// `words` 32-bit words from one node to another: store-and-forward
// per hop plus the FPGA forwarding delays.
func (n *Network) Latency(from, to, words int) float64 {
	if words <= 0 {
		panic(fmt.Sprintf("ring: non-positive message size %d", words))
	}
	hops := n.Hops(from, to)
	if hops == 0 {
		return 0
	}
	perHop := float64(words) * n.wordTime()
	fpga := float64(n.FPGAsCrossed(from, to)) * float64(n.cfg.FPGAForwardCycles) * n.wordTime()
	return float64(hops)*perHop + fpga
}

// Send records a message and returns its latency — the machine
// simulator's entry point.
func (n *Network) Send(from, to, words int) float64 {
	lat := n.Latency(from, to, words)
	n.messages++
	n.words += words
	n.busyTime += lat
	return lat
}

// BroadcastWorstCase returns the longest single-destination latency
// from the node — the time by which every recipient has the message
// when sent back-to-back.
func (n *Network) BroadcastWorstCase(from, words int) float64 {
	worst := 0.0
	for to := 0; to < n.cfg.Nodes; to++ {
		if to == from {
			continue
		}
		if l := n.Latency(from, to, words); l > worst {
			worst = l
		}
	}
	return worst
}

// Stats reports the accounting counters.
func (n *Network) Stats() (messages, words int, busySeconds float64) {
	return n.messages, n.words, n.busyTime
}
