package ring

import (
	"math"
	"testing"
	"testing/quick"
)

func pama(t *testing.T) *Network {
	t.Helper()
	n, err := New(PAMA())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 1, IOClockHz: 1, WordBits: 1},
		{Nodes: 8, FPGAs: -1, IOClockHz: 1, WordBits: 1},
		{Nodes: 8, FPGAs: 3, IOClockHz: 1, WordBits: 1}, // 3 does not divide 8
		{Nodes: 8, FPGAs: 2, IOClockHz: 0, WordBits: 1},
		{Nodes: 8, FPGAs: 2, IOClockHz: 1, WordBits: 0},
		{Nodes: 8, FPGAs: 2, IOClockHz: 1, WordBits: 1, FPGAForwardCycles: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
	if _, err := New(PAMA()); err != nil {
		t.Errorf("PAMA config rejected: %v", err)
	}
}

func TestHopsUnidirectional(t *testing.T) {
	n := pama(t)
	if n.Hops(0, 1) != 1 {
		t.Errorf("Hops(0,1) = %d", n.Hops(0, 1))
	}
	if n.Hops(0, 7) != 7 {
		t.Errorf("Hops(0,7) = %d", n.Hops(0, 7))
	}
	// Unidirectional: going "backward" wraps all the way around.
	if n.Hops(7, 0) != 1 {
		t.Errorf("Hops(7,0) = %d", n.Hops(7, 0))
	}
	if n.Hops(1, 0) != 7 {
		t.Errorf("Hops(1,0) = %d", n.Hops(1, 0))
	}
	if n.Hops(3, 3) != 0 {
		t.Errorf("Hops(3,3) = %d", n.Hops(3, 3))
	}
}

func TestHopsPanicsOnBadNode(t *testing.T) {
	n := pama(t)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range node must panic")
		}
	}()
	n.Hops(0, 8)
}

func TestFPGAsCrossed(t *testing.T) {
	n := pama(t)
	// PAMA: 2 FPGAs, one after node 3 and one after node 7.
	if got := n.FPGAsCrossed(0, 3); got != 0 {
		t.Errorf("0→3 crosses %d FPGAs, want 0", got)
	}
	if got := n.FPGAsCrossed(0, 4); got != 1 {
		t.Errorf("0→4 crosses %d, want 1", got)
	}
	if got := n.FPGAsCrossed(2, 1); got != 2 { // wraps the whole ring
		t.Errorf("2→1 crosses %d, want 2", got)
	}
	// No FPGAs configured: never crossed.
	plain, err := New(Config{Nodes: 4, IOClockHz: 1e6, WordBits: 32})
	if err != nil {
		t.Fatal(err)
	}
	if plain.FPGAsCrossed(0, 3) != 0 {
		t.Error("FPGA-less ring crossed an FPGA")
	}
}

func TestLatencyScalesWithHopsAndWords(t *testing.T) {
	n := pama(t)
	oneHop := n.Latency(0, 1, 1)
	if oneHop != 1/20e6 {
		t.Errorf("single hop, single word = %g, want 50 ns", oneHop)
	}
	// Two hops, no FPGA: exactly double.
	if got := n.Latency(0, 2, 1); math.Abs(got-2*oneHop) > 1e-15 {
		t.Errorf("two hops = %g", got)
	}
	// Bigger message: proportional per hop.
	if got := n.Latency(0, 1, 10); math.Abs(got-10*oneHop) > 1e-15 {
		t.Errorf("ten words = %g", got)
	}
	// Crossing the FPGA adds its forwarding cycles.
	withFPGA := n.Latency(3, 4, 1)
	want := oneHop + 4/20e6
	if math.Abs(withFPGA-want) > 1e-15 {
		t.Errorf("FPGA hop = %g, want %g", withFPGA, want)
	}
	// Self delivery is free.
	if n.Latency(5, 5, 3) != 0 {
		t.Error("self delivery must be free")
	}
}

func TestLatencyPanicsOnBadSize(t *testing.T) {
	n := pama(t)
	defer func() {
		if recover() == nil {
			t.Error("non-positive message size must panic")
		}
	}()
	n.Latency(0, 1, 0)
}

func TestSendAccounting(t *testing.T) {
	n := pama(t)
	l1 := n.Send(0, 4, 2)
	l2 := n.Send(1, 2, 3)
	msgs, words, busy := n.Stats()
	if msgs != 2 || words != 5 {
		t.Errorf("stats = %d msgs, %d words", msgs, words)
	}
	if math.Abs(busy-(l1+l2)) > 1e-15 {
		t.Errorf("busy = %g, want %g", busy, l1+l2)
	}
}

func TestBroadcastWorstCase(t *testing.T) {
	n := pama(t)
	worst := n.BroadcastWorstCase(0, 2)
	// The farthest node is 7 hops away; the worst case must be at
	// least that transfer time.
	if worst < 7*2/20e6 {
		t.Errorf("broadcast worst case %g too small", worst)
	}
	// And must equal the max over destinations.
	max := 0.0
	for to := 1; to < 8; to++ {
		if l := n.Latency(0, to, 2); l > max {
			max = l
		}
	}
	if worst != max {
		t.Errorf("worst %g != max %g", worst, max)
	}
}

// Property: the total FPGA crossings around the full ring equal the
// FPGA count, and latency is additive along the path.
func TestRingProperties(t *testing.T) {
	n := pama(t)
	f := func(fromRaw, midRaw uint8) bool {
		from := int(fromRaw % 8)
		mid := int(midRaw % 8)
		// Full loop crosses every FPGA exactly once.
		full := 0
		for k := 0; k < 8; k++ {
			pos := k
			next := (pos + 1) % 8
			full += n.FPGAsCrossed(pos, next)
		}
		if full != 2 {
			return false
		}
		// Additivity: from→mid→from covers the whole ring when
		// mid != from.
		if mid != from {
			total := n.Latency(from, mid, 1) + n.Latency(mid, from, 1)
			loop := 8*(1/20e6) + 2*4/20e6
			return math.Abs(total-loop) < 1e-12
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
