package ring_test

import (
	"fmt"

	"dpm/internal/ring"
)

// Price a controller command around the PAMA ring: the unidirectional
// topology makes the "previous" neighbor the farthest destination.
func ExampleNetwork_Latency() {
	n, err := ring.New(ring.PAMA())
	if err != nil {
		panic(err)
	}
	const words = 2 // opcode + operand
	fmt.Printf("controller -> worker 1: %.0f ns\n", 1e9*n.Latency(0, 1, words))
	fmt.Printf("controller -> worker 7: %.0f ns\n", 1e9*n.Latency(0, 7, words))
	fmt.Printf("worst broadcast leg:    %.0f ns\n", 1e9*n.BroadcastWorstCase(0, words))
	// Output:
	// controller -> worker 1: 100 ns
	// controller -> worker 7: 900 ns
	// worst broadcast leg:    900 ns
}
