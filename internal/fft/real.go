package fft

import (
	"fmt"
	"math"

	"dpm/internal/fixed"
)

// Real-input FFT: FORTE's ADC delivers real samples, and a real
// N-point transform can ride an N/2-point complex FFT plus an
// untangling pass — half the butterflies of the complex path the
// paper's implementation uses. This file provides the standard
// pack/untangle construction in both float (reference) and Q15
// forms.

// RealTransformer computes N-point real-input transforms via an
// N/2-point complex FFT. It owns the two twiddle sets it needs.
type RealTransformer struct {
	n       int
	half    *TwiddleTable   // N/2-point complex transform
	unt     []fixed.Complex // untangle twiddles e^{-2πik/N}, k < N/4+1
	scratch []fixed.Complex
}

// NewRealTransformer builds a transformer for real inputs of length
// n (a power of two ≥ 4).
func NewRealTransformer(n int) (*RealTransformer, error) {
	if !IsPowerOfTwo(n) || n < 4 {
		return nil, fmt.Errorf("fft: invalid real transform size %d", n)
	}
	half, err := NewTwiddleTable(n / 2)
	if err != nil {
		return nil, err
	}
	unt := make([]fixed.Complex, n/4+1)
	for k := range unt {
		angle := -2 * math.Pi * float64(k) / float64(n)
		unt[k] = fixed.CFromFloat(complex(math.Cos(angle), math.Sin(angle)))
	}
	return &RealTransformer{
		n:       n,
		half:    half,
		unt:     unt,
		scratch: make([]fixed.Complex, n/2),
	}, nil
}

// Size returns the real input length.
func (r *RealTransformer) Size() int { return r.n }

// ForwardRealFloat is the float64 reference: the DFT of a real
// sequence, returning the n/2+1 non-redundant bins.
func ForwardRealFloat(x []float64) ([]complex128, error) {
	n := len(x)
	if !IsPowerOfTwo(n) || n < 4 {
		return nil, fmt.Errorf("fft: invalid real input length %d", n)
	}
	buf := make([]complex128, n)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	if err := Forward(buf); err != nil {
		return nil, err
	}
	return buf[:n/2+1], nil
}

// ForwardReal computes the fixed-point transform of a real Q15
// sequence, returning the n/2+1 non-redundant bins. Like
// ForwardFixed it carries the 1/N normalization (each of the
// log2(N/2) complex stages halves, plus one final halving in the
// untangle), so outputs are DFT(x)/N.
func (r *RealTransformer) ForwardReal(x []fixed.Q15) ([]fixed.Complex, error) {
	if len(x) != r.n {
		return nil, fmt.Errorf("fft: input length %d, want %d", len(x), r.n)
	}
	half := r.n / 2
	// Pack even samples into the real parts, odd into the imaginary.
	z := r.scratch
	for i := 0; i < half; i++ {
		z[i] = fixed.Complex{Re: x[2*i], Im: x[2*i+1]}
	}
	if err := r.half.ForwardFixed(z); err != nil {
		return nil, err
	}
	// Untangle: for k = 0..half/2,
	//   E[k] = (Z[k] + conj(Z[half−k]))/2       (even samples' DFT)
	//   O[k] = −i·(Z[k] − conj(Z[half−k]))/2    (odd samples' DFT)
	//   X[k] = E[k] + W_N^k · O[k]
	//   X[half−k] = conj(E[k]) − conj(W_N^k·O[k]) ... realized via
	//   symmetry below.
	// Halve before every add so no intermediate can saturate: the
	// complex stage left |z| ≤ 1, and each add below combines two
	// pre-halved operands. The final bins therefore carry X[k]/N.
	out := make([]fixed.Complex, half+1)
	for k := 0; k <= half/2; k++ {
		zk := fixed.CHalf(z[k])
		zm := z[(half-k)%half]
		zmConj := fixed.CHalf(fixed.Complex{Re: zm.Re, Im: fixed.Neg(zm.Im)})

		e := fixed.CAdd(zk, zmConj) // E[k]/half
		d := fixed.CSub(zk, zmConj)
		// O[k]/half = −i·d = (d.Im, −d.Re)
		o := fixed.Complex{Re: d.Im, Im: fixed.Neg(d.Re)}
		wo := fixed.CMul(r.unt[k], o)

		out[k] = fixed.CAdd(fixed.CHalf(e), fixed.CHalf(wo)) // X[k]/N
		// X[half−k] = conj(E[k] − W·O[k]) by Hermitian symmetry of
		// the real input.
		tail := fixed.CSub(fixed.CHalf(e), fixed.CHalf(wo))
		out[half-k] = fixed.Complex{Re: tail.Re, Im: fixed.Neg(tail.Im)}
	}
	// Bin half gets its imaginary part forced to the symmetric value
	// (exactly zero in exact arithmetic).
	out[half].Im = fixed.Neg(out[half].Im)
	return out, nil
}

// RealSNR measures the fixed-point real transform against the float
// reference in dB.
func RealSNR(x []float64) (float64, error) {
	n := len(x)
	tr, err := NewRealTransformer(n)
	if err != nil {
		return 0, err
	}
	ref, err := ForwardRealFloat(x)
	if err != nil {
		return 0, err
	}
	fx := make([]fixed.Q15, n)
	for i, v := range x {
		fx[i] = fixed.FromFloat(v)
	}
	got, err := tr.ForwardReal(fx)
	if err != nil {
		return 0, err
	}
	var sig, noise float64
	for k := range got {
		want := ref[k] / complex(float64(n), 0)
		d := got[k].Float() - want
		sig += real(want)*real(want) + imag(want)*imag(want)
		noise += real(d)*real(d) + imag(d)*imag(d)
	}
	if noise == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(sig/noise), nil
}

// realCycleFactor is the compute saving of the real path: an N-point
// real transform costs about an N/2-point complex transform plus an
// O(N) untangle, ≈ 55% of the complex N-point cost at FORTE sizes.
const realCycleFactor = 0.55

// RealSeconds models the runtime of an n-point real-input FFT on the
// PIM at clock f, relative to the complex-path calibration.
func RealSeconds(n int, f float64) (float64, error) {
	sec, err := Seconds(n, f)
	if err != nil {
		return 0, err
	}
	return sec * realCycleFactor, nil
}
