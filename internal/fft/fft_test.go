package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"dpm/internal/fixed"
)

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024, 2048} {
		if !IsPowerOfTwo(n) {
			t.Errorf("%d is a power of two", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 1000} {
		if IsPowerOfTwo(n) {
			t.Errorf("%d is not a power of two", n)
		}
	}
}

func TestForwardImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("X[%d] = %v, want 1", k, v)
		}
	}
}

func TestForwardSingleTone(t *testing.T) {
	// A pure tone at bin 3 puts all energy in bin 3.
	n := 64
	x := make([]complex128, n)
	for i := range x {
		phase := 2 * math.Pi * 3 * float64(i) / float64(n)
		x[i] = cmplx.Exp(complex(0, phase))
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		want := 0.0
		if k == 3 {
			want = float64(n)
		}
		if cmplx.Abs(v-complex(want, 0)) > 1e-9 {
			t.Errorf("X[%d] = %v, want %g", k, v, want)
		}
	}
}

func TestForwardRejectsNonPowerOfTwo(t *testing.T) {
	if err := Forward(make([]complex128, 12)); err == nil {
		t.Error("length 12 must be rejected")
	}
	if err := Inverse(make([]complex128, 0)); err == nil {
		t.Error("empty input must be rejected")
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 256
	orig := make([]complex128, n)
	for i := range orig {
		orig[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	x := append([]complex128(nil), orig...)
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	if err := Inverse(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	// Σ|x|² = (1/N)·Σ|X|² for the unnormalized forward transform.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 128
		x := make([]complex128, n)
		timeEnergy := 0.0
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		if err := Forward(x); err != nil {
			return false
		}
		freqEnergy := 0.0
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(freqEnergy/float64(n)-timeEnergy) < 1e-6*timeEnergy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTwiddleTableValidation(t *testing.T) {
	if _, err := NewTwiddleTable(0); err == nil {
		t.Error("size 0 must be rejected")
	}
	if _, err := NewTwiddleTable(3); err == nil {
		t.Error("size 3 must be rejected")
	}
	if _, err := NewTwiddleTable(1); err == nil {
		t.Error("size 1 must be rejected")
	}
	tbl, err := NewTwiddleTable(16)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Size() != 16 {
		t.Errorf("Size = %d", tbl.Size())
	}
}

func TestForwardFixedSizeMismatch(t *testing.T) {
	tbl, err := NewTwiddleTable(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.ForwardFixed(make([]fixed.Complex, 8)); err == nil {
		t.Error("size mismatch must be rejected")
	}
}

func TestForwardFixedImpulse(t *testing.T) {
	// Impulse of amplitude 0.5: fixed FFT computes DFT/N, so every
	// bin should be 0.5/N.
	n := 16
	tbl, err := NewTwiddleTable(n)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]fixed.Complex, n)
	x[0] = fixed.CFromFloat(0.5)
	if err := tbl.ForwardFixed(x); err != nil {
		t.Fatal(err)
	}
	want := 0.5 / float64(n)
	for k, v := range x {
		if math.Abs(real(v.Float())-want) > 2e-3 || math.Abs(imag(v.Float())) > 2e-3 {
			t.Errorf("X[%d] = %v, want %g", k, v.Float(), want)
		}
	}
}

func TestForwardFixedMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 512
	input := make([]complex128, n)
	for i := range input {
		// Keep amplitudes modest so quantization dominates, not
		// saturation.
		input[i] = complex(0.4*rng.NormFloat64()/3, 0.4*rng.NormFloat64()/3)
	}
	snr, err := SNR(input)
	if err != nil {
		t.Fatal(err)
	}
	// A Q15 FFT with per-stage scaling typically achieves > 40 dB on
	// this size; demand a conservative floor.
	if snr < 30 {
		t.Errorf("fixed-point SNR = %.1f dB, want > 30 dB", snr)
	}
}

func TestSNRPerfectOnZero(t *testing.T) {
	snr, err := SNR(make([]complex128, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(snr, 1) {
		t.Errorf("zero input SNR = %g, want +Inf", snr)
	}
}

func TestPowerSpectrum(t *testing.T) {
	n := 16
	tbl, err := NewTwiddleTable(n)
	if err != nil {
		t.Fatal(err)
	}
	// Tone at bin 2.
	x := make([]fixed.Complex, n)
	for i := range x {
		phase := 2 * math.Pi * 2 * float64(i) / float64(n)
		x[i] = fixed.CFromFloat(complex(0.5*math.Cos(phase), 0.5*math.Sin(phase)))
	}
	if err := tbl.ForwardFixed(x); err != nil {
		t.Fatal(err)
	}
	ps := PowerSpectrum(x)
	if len(ps) != n/2+1 {
		t.Fatalf("spectrum bins = %d", len(ps))
	}
	// Bin 2 dominates.
	for k, p := range ps {
		if k != 2 && p > ps[2]/10 {
			t.Errorf("bin %d power %g rivals tone bin %g", k, p, ps[2])
		}
	}
}

func TestPowerSpectrumFloat(t *testing.T) {
	x := []complex128{complex(3, 4), 0, 0, 0}
	ps := PowerSpectrumFloat(x)
	if len(ps) != 3 {
		t.Fatalf("bins = %d", len(ps))
	}
	if math.Abs(ps[0]-25) > 1e-12 {
		t.Errorf("ps[0] = %g", ps[0])
	}
}

func TestHannWindow(t *testing.T) {
	w := Hann(64)
	if len(w) != 64 {
		t.Fatalf("window length %d", len(w))
	}
	if w[0].Float() > 1e-3 {
		t.Errorf("Hann[0] = %g, want 0", w[0].Float())
	}
	if math.Abs(w[32].Float()-1) > 1e-3 {
		t.Errorf("Hann[N/2] = %g, want 1", w[32].Float())
	}
	// Symmetry.
	for i := 1; i < 32; i++ {
		if math.Abs(w[i].Float()-w[64-i].Float()) > 1e-3 {
			t.Errorf("Hann not symmetric at %d", i)
		}
	}
}

func TestApplyWindow(t *testing.T) {
	x := make([]fixed.Complex, 4)
	for i := range x {
		x[i] = fixed.CFromFloat(0.5)
	}
	w := []fixed.Q15{fixed.FromFloat(0), fixed.FromFloat(0.5), fixed.FromFloat(0.999), fixed.FromFloat(0.25)}
	if err := ApplyWindow(x, w); err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(x[0].Float())) > 1e-4 {
		t.Errorf("windowed[0] = %v", x[0].Float())
	}
	if math.Abs(real(x[1].Float())-0.25) > 1e-3 {
		t.Errorf("windowed[1] = %v", x[1].Float())
	}
	if err := ApplyWindow(x, w[:2]); err == nil {
		t.Error("length mismatch must be rejected")
	}
}

func TestCycleModelCalibration(t *testing.T) {
	// The calibration point must reproduce exactly: 2K FFT at 20 MHz
	// takes 4.8 s.
	sec, err := Seconds(2048, 20e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sec-4.8) > 1e-9 {
		t.Errorf("2K FFT at 20 MHz = %g s, want 4.8", sec)
	}
	// At 80 MHz: a quarter of the time.
	sec, err = Seconds(2048, 80e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sec-1.2) > 1e-9 {
		t.Errorf("2K FFT at 80 MHz = %g s, want 1.2", sec)
	}
}

func TestCycleModelScaling(t *testing.T) {
	c1, err := Cycles(1024)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Cycles(2048)
	if err != nil {
		t.Fatal(err)
	}
	// N log N scaling: 2048·11 / (1024·10) = 2.2.
	if math.Abs(c2/c1-2.2) > 1e-9 {
		t.Errorf("cycle ratio = %g, want 2.2", c2/c1)
	}
	if _, err := Cycles(1000); err == nil {
		t.Error("non-power-of-two must be rejected")
	}
	if _, err := Seconds(1024, 0); err == nil {
		t.Error("zero clock must be rejected")
	}
}
