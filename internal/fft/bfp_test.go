package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"dpm/internal/fixed"
)

func randomInput(n int, amplitude float64, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(amplitude*rng.NormFloat64(), amplitude*rng.NormFloat64())
	}
	return out
}

func TestInverseFixedRoundTrip(t *testing.T) {
	// ForwardFixed computes DFT/N, and InverseFixed is an exact IDFT
	// of its input, so the round trip returns x/N. Keep N small so
	// x/N stays well above the Q15 rounding-noise floor accumulated
	// over 2·log2(N) stages.
	n := 64
	table, err := NewTwiddleTable(n)
	if err != nil {
		t.Fatal(err)
	}
	input := randomInput(n, 0.2, 3)
	fx := make([]fixed.Complex, n)
	for i, c := range input {
		fx[i] = fixed.CFromFloat(c)
	}
	orig := append([]fixed.Complex(nil), fx...)

	if err := table.ForwardFixed(fx); err != nil {
		t.Fatal(err)
	}
	if err := table.InverseFixed(fx); err != nil {
		t.Fatal(err)
	}
	for i := range fx {
		want := orig[i].Float() / complex(float64(n), 0)
		got := fx[i].Float()
		if cmplx.Abs(got-want) > 8.0/32768 {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, got, want)
		}
	}
}

func TestInverseFixedSizeMismatch(t *testing.T) {
	table, err := NewTwiddleTable(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := table.InverseFixed(make([]fixed.Complex, 8)); err == nil {
		t.Error("size mismatch must be rejected")
	}
}

func TestForwardBFPSizeMismatch(t *testing.T) {
	table, err := NewTwiddleTable(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := table.ForwardBFP(make([]fixed.Complex, 8)); err == nil {
		t.Error("size mismatch must be rejected")
	}
}

func TestForwardBFPExponentBounds(t *testing.T) {
	n := 64
	table, err := NewTwiddleTable(n)
	if err != nil {
		t.Fatal(err)
	}
	// A hot input must scale at (almost) every stage.
	hot := make([]fixed.Complex, n)
	for i := range hot {
		hot[i] = fixed.CFromFloat(complex(0.9, 0))
	}
	e, err := table.ForwardBFP(hot)
	if err != nil {
		t.Fatal(err)
	}
	if e < 1 || e > 6 {
		t.Errorf("hot input exponent = %d, want within [1, log2(64)]", e)
	}
	// A tiny input should barely scale.
	cold := make([]fixed.Complex, n)
	cold[0] = fixed.CFromFloat(complex(1e-3, 0))
	e, err = table.ForwardBFP(cold)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("cold input exponent = %d, want 0", e)
	}
}

func TestForwardBFPMatchesReference(t *testing.T) {
	n := 256
	table, err := NewTwiddleTable(n)
	if err != nil {
		t.Fatal(err)
	}
	input := randomInput(n, 0.05, 11)
	ref := append([]complex128(nil), input...)
	if err := Forward(ref); err != nil {
		t.Fatal(err)
	}
	fx := make([]fixed.Complex, n)
	for i, c := range input {
		fx[i] = fixed.CFromFloat(c)
	}
	e, err := table.ForwardBFP(fx)
	if err != nil {
		t.Fatal(err)
	}
	scale := math.Ldexp(1, e)
	for k := 0; k < n; k++ {
		got := fx[k].Float() * complex(scale, 0)
		if cmplx.Abs(got-ref[k]) > 0.02*(1+cmplx.Abs(ref[k])) {
			t.Fatalf("bin %d: %v vs %v (e=%d)", k, got, ref[k], e)
		}
	}
}

// The whole point of BFP: better SNR than guaranteed scaling on
// small-amplitude inputs.
func TestBFPBeatsGuaranteedScalingOnQuietSignals(t *testing.T) {
	input := randomInput(512, 0.01, 21)
	plain, err := SNR(input)
	if err != nil {
		t.Fatal(err)
	}
	bfp, err := BFPSNR(input)
	if err != nil {
		t.Fatal(err)
	}
	if bfp <= plain {
		t.Errorf("BFP SNR %.1f dB should beat guaranteed scaling %.1f dB on quiet input", bfp, plain)
	}
	if bfp < 40 {
		t.Errorf("BFP SNR %.1f dB suspiciously low", bfp)
	}
}

func TestBFPSNRZeroInput(t *testing.T) {
	snr, err := BFPSNR(make([]complex128, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(snr, 1) {
		t.Errorf("zero input SNR = %g", snr)
	}
}
