package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"dpm/internal/fixed"
)

func TestNewRealTransformerValidation(t *testing.T) {
	for _, n := range []int{0, 2, 3, 100} {
		if _, err := NewRealTransformer(n); err == nil {
			t.Errorf("size %d must be rejected", n)
		}
	}
	tr, err := NewRealTransformer(2048)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 2048 {
		t.Errorf("Size = %d", tr.Size())
	}
}

func TestForwardRealFloatTone(t *testing.T) {
	n := 64
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * 5 * float64(i) / float64(n))
	}
	bins, err := ForwardRealFloat(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != n/2+1 {
		t.Fatalf("bins = %d", len(bins))
	}
	// A real cosine puts n/2 in bin 5.
	if cmplx.Abs(bins[5]-complex(float64(n)/2, 0)) > 1e-9 {
		t.Errorf("bin 5 = %v", bins[5])
	}
	if _, err := ForwardRealFloat(make([]float64, 3)); err == nil {
		t.Error("bad length must be rejected")
	}
}

func TestForwardRealMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 512
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.4 * rng.NormFloat64() / 3
	}
	tr, err := NewRealTransformer(n)
	if err != nil {
		t.Fatal(err)
	}
	fx := make([]fixed.Q15, n)
	for i, v := range x {
		fx[i] = fixed.FromFloat(v)
	}
	got, err := tr.ForwardReal(fx)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ForwardRealFloat(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("bins %d vs %d", len(got), len(ref))
	}
	for k := range got {
		want := ref[k] / complex(float64(n), 0)
		if cmplx.Abs(got[k].Float()-want) > 3e-3 {
			t.Fatalf("bin %d: %v vs %v", k, got[k].Float(), want)
		}
	}
}

func TestForwardRealSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 2048)
	for i := range x {
		x[i] = 0.1 * rng.NormFloat64()
	}
	snr, err := RealSNR(x)
	if err != nil {
		t.Fatal(err)
	}
	if snr < 30 {
		t.Errorf("real-path SNR = %.1f dB, want > 30", snr)
	}
}

func TestForwardRealLengthMismatch(t *testing.T) {
	tr, err := NewRealTransformer(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ForwardReal(make([]fixed.Q15, 32)); err == nil {
		t.Error("length mismatch must be rejected")
	}
}

func TestForwardRealHermitianEndpoints(t *testing.T) {
	// Bins 0 and N/2 of a real transform are purely real.
	rng := rand.New(rand.NewSource(5))
	n := 128
	tr, err := NewRealTransformer(n)
	if err != nil {
		t.Fatal(err)
	}
	fx := make([]fixed.Q15, n)
	for i := range fx {
		fx[i] = fixed.FromFloat(0.2 * rng.NormFloat64())
	}
	got, err := tr.ForwardReal(fx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imag(got[0].Float())) > 2e-3 {
		t.Errorf("DC bin imaginary: %v", got[0].Float())
	}
	if math.Abs(imag(got[n/2].Float())) > 2e-3 {
		t.Errorf("Nyquist bin imaginary: %v", got[n/2].Float())
	}
}

func TestRealSecondsFaster(t *testing.T) {
	cSec, err := Seconds(2048, 20e6)
	if err != nil {
		t.Fatal(err)
	}
	rSec, err := RealSeconds(2048, 20e6)
	if err != nil {
		t.Fatal(err)
	}
	if rSec >= cSec {
		t.Errorf("real path %g s not faster than complex %g s", rSec, cSec)
	}
	if _, err := RealSeconds(1000, 20e6); err == nil {
		t.Error("bad size must propagate")
	}
}
