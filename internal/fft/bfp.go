package fft

import (
	"fmt"
	"math"

	"dpm/internal/fixed"
)

// This file adds two fixed-point refinements beyond the paper's
// baseline transform:
//
//   - InverseFixed, the inverse transform (conjugate trick over the
//     same butterfly network), and
//   - ForwardBFP, block-floating-point scaling: instead of
//     unconditionally halving at every stage (which buries small
//     signals in quantization noise), each stage is halved only when
//     its values could actually overflow, and a shared block exponent
//     records the total scaling. This is the standard DSP upgrade to
//     a guaranteed-scaling FFT and an ablation target in
//     bench_test.go.

// InverseFixed computes the inverse fixed-point FFT via the
// conjugation identity IDFT(x) = conj(DFT(conj(x)))/N; with the
// forward transform's built-in 1/N scaling the result is exactly the
// inverse of ForwardFixed up to rounding noise.
func (t *TwiddleTable) InverseFixed(x []fixed.Complex) error {
	if len(x) != t.n {
		return fmt.Errorf("fft: input length %d does not match table size %d", len(x), t.n)
	}
	for i := range x {
		x[i].Im = fixed.Neg(x[i].Im)
	}
	if err := t.ForwardFixed(x); err != nil {
		return err
	}
	for i := range x {
		x[i].Im = fixed.Neg(x[i].Im)
	}
	return nil
}

// bfpHeadroomLimit is the magnitude above which a butterfly stage
// could overflow: a butterfly at most doubles a value and the twiddle
// multiply cannot grow it, so anything at or above 0.5 forces a
// pre-scale.
const bfpHeadroomLimit = 1 << 14 // 0.5 in Q15

// needsScale reports whether any component's magnitude reaches the
// headroom limit.
func needsScale(x []fixed.Complex) bool {
	for _, c := range x {
		if c.Re >= bfpHeadroomLimit || c.Re <= -bfpHeadroomLimit ||
			c.Im >= bfpHeadroomLimit || c.Im <= -bfpHeadroomLimit {
			return true
		}
	}
	return false
}

// ForwardBFP computes the fixed-point FFT with block-floating-point
// scaling. It returns the block exponent e: the mathematical DFT of
// the input equals the returned buffer times 2^e (so e ≤ log2(N),
// with equality exactly when every stage had to scale — the
// guaranteed-scaling behavior of ForwardFixed).
func (t *TwiddleTable) ForwardBFP(x []fixed.Complex) (int, error) {
	n := len(x)
	if n != t.n {
		return 0, fmt.Errorf("fft: input length %d does not match table size %d", n, t.n)
	}
	bitReverseFixed(x)
	exponent := 0
	for size := 2; size <= n; size <<= 1 {
		scale := needsScale(x)
		if scale {
			exponent++
		}
		half := size / 2
		stride := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := t.w[k*stride]
				a := x[start+k]
				b := fixed.CMul(x[start+k+half], w)
				if scale {
					a = fixed.CHalf(a)
					b = fixed.CHalf(b)
				}
				x[start+k] = fixed.CAdd(a, b)
				x[start+k+half] = fixed.CSub(a, b)
			}
		}
	}
	return exponent, nil
}

// BFPSNR measures the block-floating-point transform's SNR in dB
// against the float reference, analogous to SNR for the guaranteed-
// scaling transform.
func BFPSNR(input []complex128) (float64, error) {
	n := len(input)
	table, err := NewTwiddleTable(n)
	if err != nil {
		return 0, err
	}
	ref := append([]complex128(nil), input...)
	if err := Forward(ref); err != nil {
		return 0, err
	}
	fx := make([]fixed.Complex, n)
	for i, c := range input {
		fx[i] = fixed.CFromFloat(c)
	}
	exponent, err := table.ForwardBFP(fx)
	if err != nil {
		return 0, err
	}
	scale := 1.0
	for i := 0; i < exponent; i++ {
		scale *= 2
	}
	var sig, noise float64
	for k := 0; k < n; k++ {
		want := ref[k]
		got := fx[k].Float() * complex(scale, 0)
		d := got - want
		sig += real(want)*real(want) + imag(want)*imag(want)
		noise += real(d)*real(d) + imag(d)*imag(d)
	}
	if noise == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(sig/noise), nil
}
