// Package fft provides the paper's signal-processing kernel: a
// radix-2 decimation-in-time FFT in both a floating-point reference
// form and the Q15 fixed-point form the M32R/D processors actually
// run (§5: "Since our platform does not support floating-point
// operations, we implemented fixed-point FFT operations"). The
// fixed-point transform scales by 1/2 at every stage, the standard
// guard against overflow, so its output is the DFT divided by N.
//
// A cycle model calibrated to the paper's measurement (a 2K-sample
// FFT takes 4.8 s at 20 MHz) lets the machine simulator convert
// transform sizes into execution time at any clock.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"dpm/internal/fixed"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// bitReverse permutes x in place into bit-reversed order.
func bitReverseFloat(x []complex128) {
	n := len(x)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := range x {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
}

func bitReverseFixed(x []fixed.Complex) {
	n := len(x)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := range x {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// Forward computes the in-place radix-2 DIT FFT of x. len(x) must be
// a power of two.
func Forward(x []complex128) error {
	n := len(x)
	if !IsPowerOfTwo(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	bitReverseFloat(x)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, step*float64(k)))
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	return nil
}

// Inverse computes the in-place inverse FFT (with 1/N normalization).
func Inverse(x []complex128) error {
	n := len(x)
	if !IsPowerOfTwo(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := Forward(x); err != nil {
		return err
	}
	scale := complex(1/float64(n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * scale
	}
	return nil
}

// TwiddleTable holds the Q15 twiddle factors for a fixed transform
// size, precomputed once the way a PIM implementation would hold them
// in its on-chip DRAM.
type TwiddleTable struct {
	n int
	w []fixed.Complex // w[k] = exp(−2πik/n), k < n/2
}

// NewTwiddleTable builds the table for size n (a power of two ≥ 2).
func NewTwiddleTable(n int) (*TwiddleTable, error) {
	if !IsPowerOfTwo(n) || n < 2 {
		return nil, fmt.Errorf("fft: invalid twiddle size %d", n)
	}
	t := &TwiddleTable{n: n, w: make([]fixed.Complex, n/2)}
	for k := 0; k < n/2; k++ {
		angle := -2 * math.Pi * float64(k) / float64(n)
		t.w[k] = fixed.CFromFloat(complex(math.Cos(angle), math.Sin(angle)))
	}
	return t, nil
}

// Size returns the transform size the table serves.
func (t *TwiddleTable) Size() int { return t.n }

// ForwardFixed computes the in-place fixed-point FFT of x using the
// table. len(x) must equal the table size. Each stage scales by 1/2,
// so the result is DFT(x)/N — callers comparing against Forward must
// multiply by N (or divide the reference).
func (t *TwiddleTable) ForwardFixed(x []fixed.Complex) error {
	n := len(x)
	if n != t.n {
		return fmt.Errorf("fft: input length %d does not match table size %d", n, t.n)
	}
	bitReverseFixed(x)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		stride := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := t.w[k*stride]
				// Scale inputs by 1/2 before the butterfly so the
				// add cannot overflow.
				a := fixed.CHalf(x[start+k])
				b := fixed.CHalf(fixed.CMul(x[start+k+half], w))
				x[start+k] = fixed.CAdd(a, b)
				x[start+k+half] = fixed.CSub(a, b)
			}
		}
	}
	return nil
}

// PowerSpectrum returns |X[k]|² for k < len(x)/2+1 from a transformed
// fixed-point buffer.
func PowerSpectrum(x []fixed.Complex) []float64 {
	out := make([]float64, len(x)/2+1)
	for k := range out {
		out[k] = x[k].MagSq()
	}
	return out
}

// PowerSpectrumFloat returns |X[k]|² for k < len(x)/2+1 from a
// transformed float buffer.
func PowerSpectrumFloat(x []complex128) []float64 {
	out := make([]float64, len(x)/2+1)
	for k := range out {
		re, im := real(x[k]), imag(x[k])
		out[k] = re*re + im*im
	}
	return out
}

// SNR returns the signal-to-noise ratio in dB of the fixed-point
// transform against the float reference for the same input, with the
// reference scaled by 1/N to match the fixed-point normalization.
// It quantifies the Q15 rounding-noise floor.
func SNR(input []complex128) (float64, error) {
	n := len(input)
	table, err := NewTwiddleTable(n)
	if err != nil {
		return 0, err
	}
	ref := append([]complex128(nil), input...)
	if err := Forward(ref); err != nil {
		return 0, err
	}
	fx := make([]fixed.Complex, n)
	for i, c := range input {
		fx[i] = fixed.CFromFloat(c)
	}
	if err := table.ForwardFixed(fx); err != nil {
		return 0, err
	}
	var sig, noise float64
	for k := 0; k < n; k++ {
		want := ref[k] / complex(float64(n), 0)
		got := fx[k].Float()
		d := got - want
		sig += real(want)*real(want) + imag(want)*imag(want)
		noise += real(d)*real(d) + imag(d)*imag(d)
	}
	if noise == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(sig/noise), nil
}

// Hann fills a window of length n with Hann coefficients in Q15.
func Hann(n int) []fixed.Q15 {
	w := make([]fixed.Q15, n)
	for i := range w {
		w[i] = fixed.FromFloat(0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n))))
	}
	return w
}

// ApplyWindow multiplies the samples by the window in place. Lengths
// must match.
func ApplyWindow(x []fixed.Complex, w []fixed.Q15) error {
	if len(x) != len(w) {
		return fmt.Errorf("fft: window length %d vs signal %d", len(w), len(x))
	}
	for i := range x {
		x[i].Re = fixed.Mul(x[i].Re, w[i])
		x[i].Im = fixed.Mul(x[i].Im, w[i])
	}
	return nil
}

// Cycle model ------------------------------------------------------

// The paper measures the 2K-sample fixed-point FFT at 4.8 s on a
// 20 MHz M32R/D: 96e6 cycles for N·log2(N) = 2048·11 = 22528
// butterflies-worth of work, i.e. ≈ 4261 cycles per N·log2(N) unit
// (the PIM's DRAM-bound inner loop is slow). The model scales as
// N·log2(N).
const (
	// CalibratedSamples is the paper's FFT size.
	CalibratedSamples = 2048
	// CalibratedSeconds is its measured runtime.
	CalibratedSeconds = 4.8
	// CalibratedHz is the clock it was measured at.
	CalibratedHz = 20e6
)

// Cycles returns the modeled cycle count of an n-point fixed-point
// FFT on the PIM, calibrated to the paper's measurement.
func Cycles(n int) (float64, error) {
	if !IsPowerOfTwo(n) {
		return 0, fmt.Errorf("fft: length %d is not a power of two", n)
	}
	unit := CalibratedSeconds * CalibratedHz /
		(float64(CalibratedSamples) * math.Log2(CalibratedSamples))
	return unit * float64(n) * math.Log2(float64(n)), nil
}

// Seconds returns the modeled runtime of an n-point FFT at clock f.
func Seconds(n int, f float64) (float64, error) {
	if f <= 0 {
		return 0, fmt.Errorf("fft: non-positive clock %g", f)
	}
	cycles, err := Cycles(n)
	if err != nil {
		return 0, err
	}
	return cycles / f, nil
}
