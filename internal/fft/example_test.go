package fft_test

import (
	"fmt"
	"math"

	"dpm/internal/fft"
	"dpm/internal/fixed"
)

// Transform a pure tone with the fixed-point FFT the PIM processors
// run and find its spectral peak.
func ExampleTwiddleTable_ForwardFixed() {
	const n = 64
	table, err := fft.NewTwiddleTable(n)
	if err != nil {
		panic(err)
	}
	buf := make([]fixed.Complex, n)
	for i := range buf {
		phase := 2 * math.Pi * 5 * float64(i) / n
		buf[i] = fixed.CFromFloat(complex(0.5*math.Cos(phase), 0.5*math.Sin(phase)))
	}
	if err := table.ForwardFixed(buf); err != nil {
		panic(err)
	}
	spectrum := fft.PowerSpectrum(buf)
	peak := 0
	for k, p := range spectrum {
		if p > spectrum[peak] {
			peak = k
		}
	}
	fmt.Printf("tone found in bin %d\n", peak)
	// Output:
	// tone found in bin 5
}

// The cycle model reproduces the paper's measurement: a 2K-sample
// fixed-point FFT takes 4.8 s at 20 MHz on the M32R/D.
func ExampleSeconds() {
	for _, mhz := range []float64{20, 40, 80} {
		sec, err := fft.Seconds(2048, mhz*1e6)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%3.0f MHz: %.1f s\n", mhz, sec)
	}
	// Output:
	//  20 MHz: 4.8 s
	//  40 MHz: 2.4 s
	//  80 MHz: 1.2 s
}
