package fft

import (
	"math"
	"testing"

	"dpm/internal/fixed"
)

func TestSTFTValidation(t *testing.T) {
	x := make([]fixed.Complex, 512)
	if _, err := STFT(x, 100, 64); err == nil {
		t.Error("non-power-of-two frame must be rejected")
	}
	if _, err := STFT(x, 256, 0); err == nil {
		t.Error("zero hop must be rejected")
	}
	if _, err := STFT(x[:100], 256, 64); err == nil {
		t.Error("capture shorter than a frame must be rejected")
	}
}

func TestSTFTFrameCount(t *testing.T) {
	x := make([]fixed.Complex, 1024)
	rows, err := STFT(x, 256, 128)
	if err != nil {
		t.Fatal(err)
	}
	// Frames start at 0, 128, ..., 768: seven frames.
	if len(rows) != 7 {
		t.Fatalf("frames = %d, want 7", len(rows))
	}
	if len(rows[0]) != 129 {
		t.Errorf("bins = %d, want 129", len(rows[0]))
	}
}

func TestSTFTLocatesTone(t *testing.T) {
	// A tone at normalized frequency 0.25 lands in bin frameLen/4 of
	// every frame.
	n, frame := 2048, 256
	x := make([]fixed.Complex, n)
	for i := range x {
		phase := 2 * math.Pi * 0.25 * float64(i)
		x[i] = fixed.CFromFloat(complex(0.4*math.Cos(phase), 0.4*math.Sin(phase)))
	}
	rows, err := STFT(x, frame, frame/2)
	if err != nil {
		t.Fatal(err)
	}
	for fi, row := range rows {
		peak := 0
		for k, p := range row {
			if p > row[peak] {
				peak = k
			}
		}
		if peak != frame/4 {
			t.Fatalf("frame %d: peak bin %d, want %d", fi, peak, frame/4)
		}
	}
}

func TestSpectralCentroid(t *testing.T) {
	row := []float64{0, 0, 1, 0, 0}
	if got := SpectralCentroid(row); got != 2 {
		t.Errorf("centroid = %g, want 2", got)
	}
	if got := SpectralCentroid([]float64{0, 0}); got != -1 {
		t.Errorf("empty centroid = %g, want -1", got)
	}
	track := CentroidTrack([][]float64{row, {1, 0, 0}})
	if track[0] != 2 || track[1] != 0 {
		t.Errorf("track = %v", track)
	}
}
