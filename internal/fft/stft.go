package fft

import (
	"fmt"

	"dpm/internal/fixed"
)

// Short-time Fourier transform: the spectrogram view the FORTE
// follow-on classification system ([19] in the paper) works from.
// Frames of length frameLen advance by hop samples; each frame is
// Hann-windowed and transformed with the fixed-point FFT.

// STFT computes the power spectrogram of a Q15 complex capture.
// It returns one row per frame, each holding frameLen/2+1 power
// bins.
func STFT(x []fixed.Complex, frameLen, hop int) ([][]float64, error) {
	if !IsPowerOfTwo(frameLen) || frameLen < 4 {
		return nil, fmt.Errorf("fft: invalid frame length %d", frameLen)
	}
	if hop <= 0 {
		return nil, fmt.Errorf("fft: non-positive hop %d", hop)
	}
	if len(x) < frameLen {
		return nil, fmt.Errorf("fft: capture of %d samples shorter than frame %d", len(x), frameLen)
	}
	table, err := NewTwiddleTable(frameLen)
	if err != nil {
		return nil, err
	}
	window := Hann(frameLen)
	frame := make([]fixed.Complex, frameLen)

	var rows [][]float64
	for start := 0; start+frameLen <= len(x); start += hop {
		copy(frame, x[start:start+frameLen])
		if err := ApplyWindow(frame, window); err != nil {
			return nil, err
		}
		if err := table.ForwardFixed(frame); err != nil {
			return nil, err
		}
		rows = append(rows, PowerSpectrum(frame))
	}
	return rows, nil
}

// SpectralCentroid returns the power-weighted mean bin of one
// spectrum row, or -1 when the row carries no energy.
func SpectralCentroid(row []float64) float64 {
	var num, den float64
	for k, p := range row {
		num += float64(k) * p
		den += p
	}
	if den == 0 {
		return -1
	}
	return num / den
}

// CentroidTrack returns the spectral centroid of every spectrogram
// frame — the sweep trajectory a dispersed transient draws.
func CentroidTrack(rows [][]float64) []float64 {
	out := make([]float64, len(rows))
	for i, row := range rows {
		out[i] = SpectralCentroid(row)
	}
	return out
}
