package sim

import (
	"context"
	"testing"
)

func TestScheduleAndRunOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	if n := e.Run(10); n != 3 {
		t.Fatalf("fired %d events", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 10 {
		t.Errorf("clock = %g, want advanced to until", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.Run(1)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of FIFO order: %v", order)
		}
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(5, func() { fired++ })
	e.Schedule(15, func() { fired++ })
	if n := e.Run(10); n != 1 {
		t.Errorf("fired %d, want 1", n)
	}
	if fired != 1 || e.Pending() != 1 {
		t.Errorf("fired=%d pending=%d", fired, e.Pending())
	}
	// The later event still fires on the next window.
	e.Run(20)
	if fired != 2 {
		t.Errorf("second window fired=%d", fired)
	}
}

func TestScheduleAfter(t *testing.T) {
	e := NewEngine()
	var at float64
	e.Schedule(5, func() {
		e.ScheduleAfter(2.5, func() { at = e.Now() })
	})
	e.Run(100)
	if at != 7.5 {
		t.Errorf("nested ScheduleAfter fired at %g, want 7.5", at)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.Schedule(1, func() { fired = true })
	h.Cancel()
	if !h.Cancelled() {
		t.Error("handle must report cancellation")
	}
	e.Run(10)
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancelling twice or after running is harmless.
	h.Cancel()
	var zero Handle
	zero.Cancel() // no panic
	if zero.Cancelled() {
		t.Error("zero handle is not cancelled")
	}
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(1, func() { order = append(order, 1) })
	h := e.Schedule(2, func() { order = append(order, 2) })
	e.Schedule(3, func() { order = append(order, 3) })
	h.Cancel()
	e.Run(10)
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestPanicsOnPastSchedule(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run(5)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past must panic")
		}
	}()
	e.Schedule(1, func() {})
}

func TestPanicsOnNilAction(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil action must panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestPanicsOnNegativeDelay(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay must panic")
		}
	}()
	e.ScheduleAfter(-1, func() {})
}

func TestPanicsOnPastRun(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run(5)
	defer func() {
		if recover() == nil {
			t.Error("running into the past must panic")
		}
	}()
	e.Run(1)
}

func TestRunAll(t *testing.T) {
	e := NewEngine()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 10 {
			e.ScheduleAfter(1, chain)
		}
	}
	e.Schedule(0, chain)
	if n := e.RunAll(100); n != 10 {
		t.Errorf("RunAll fired %d", n)
	}
	if e.Fired() != 10 {
		t.Errorf("Fired = %d", e.Fired())
	}
}

func TestRunAllCapPanics(t *testing.T) {
	e := NewEngine()
	var loop func()
	loop = func() { e.ScheduleAfter(1, loop) }
	e.Schedule(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("runaway schedule must panic at the cap")
		}
	}()
	e.RunAll(50)
}

func TestStepEmptyQueue(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty queue must return false")
	}
}

// TestRunContextCancellation stops the event loop early with the
// context's error and leaves the clock at the last fired event.
func TestRunContextCancellation(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := 0
	for i := 0; i < 10; i++ {
		at := float64(i)
		e.Schedule(at, func() {
			fired++
			if fired == 3 {
				cancel()
			}
		})
	}
	n, err := e.RunContext(ctx, 100, 1)
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n != 3 || fired != 3 {
		t.Fatalf("fired %d/%d events before stopping, want 3", n, fired)
	}
	if e.Now() == 100 {
		t.Fatal("clock advanced to the horizon despite the abort")
	}
	// The remaining events are still runnable afterwards.
	if n, err := e.RunContext(context.Background(), 100, 1); err != nil || n != 7 {
		t.Fatalf("resume fired %d (%v), want 7", n, err)
	}
}
