// Package sim is a minimal discrete-event simulation kernel: a clock
// and a time-ordered event queue with stable FIFO ordering for
// simultaneous events and O(log n) cancellation. The machine package
// builds the PAMA board model on top of it.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math"
)

// Handle identifies a scheduled event so it can be cancelled (e.g. a
// task-completion event invalidated by a mid-task frequency change).
type Handle struct {
	ev *event
}

// Cancel removes the event from the queue if it has not fired yet.
// Cancelling a fired or already-cancelled event is a no-op. A nil or
// zero Handle is also a no-op.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.cancelled = true
	}
}

// Cancelled reports whether the handle's event was cancelled.
func (h Handle) Cancelled() bool { return h.ev != nil && h.ev.cancelled }

type event struct {
	at        float64
	seq       uint64
	action    func()
	cancelled bool
	index     int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is the simulation clock and queue. It is not safe for
// concurrent use: a discrete-event simulation is sequential by
// construction.
type Engine struct {
	now   float64
	queue eventHeap
	seq   uint64
	fired uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of queued (uncancelled firings may be
// fewer) events.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule enqueues action to run at absolute time at, which must not
// precede the current clock. Simultaneous events fire in scheduling
// order.
func (e *Engine) Schedule(at float64, action func()) Handle {
	if action == nil {
		panic("sim: Schedule with nil action")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %g before now %g", at, e.now))
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("sim: scheduling at non-finite time %g", at))
	}
	ev := &event{at: at, seq: e.seq, action: action}
	e.seq++
	heap.Push(&e.queue, ev)
	return Handle{ev: ev}
}

// ScheduleAfter enqueues action to run delay seconds from now.
func (e *Engine) ScheduleAfter(delay float64, action func()) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", delay))
	}
	return e.Schedule(e.now+delay, action)
}

// Step fires the next event, advancing the clock to it. It returns
// false when the queue is empty. Cancelled events are skipped
// silently.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.action()
		return true
	}
	return false
}

// Run fires events until the queue empties or the next event lies
// beyond until; the clock is then advanced to exactly until. It
// returns the number of events fired.
func (e *Engine) Run(until float64) int {
	n, _ := e.RunContext(context.Background(), until, 0)
	return n
}

// RunContext is Run with cooperative cancellation: ctx is polled
// every checkEvery fired events (0 means a default of 1024) and the
// run stops early with ctx.Err() when it is cancelled. On early stop
// the clock stays at the last fired event instead of advancing to
// until, so the simulation state is an honest prefix of the full run.
func (e *Engine) RunContext(ctx context.Context, until float64, checkEvery int) (int, error) {
	if until < e.now {
		panic(fmt.Sprintf("sim: running until %g before now %g", until, e.now))
	}
	if checkEvery <= 0 {
		checkEvery = 1024
	}
	fired := 0
	for len(e.queue) > 0 {
		// Peek: skip cancelled heads without advancing time.
		head := e.queue[0]
		if head.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		if head.at > until {
			break
		}
		if fired%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return fired, err
			}
		}
		e.Step()
		fired++
	}
	e.now = until
	return fired, nil
}

// RunAll fires every queued event (including ones scheduled while
// running) up to a safety cap, returning the number fired. It panics
// if the cap is hit — an unbounded self-rescheduling loop is a bug in
// the model, not a load condition.
func (e *Engine) RunAll(maxEvents int) int {
	if maxEvents <= 0 {
		panic(fmt.Sprintf("sim: non-positive event cap %d", maxEvents))
	}
	fired := 0
	for e.Step() {
		fired++
		if fired > maxEvents {
			panic(fmt.Sprintf("sim: exceeded %d events; runaway schedule", maxEvents))
		}
	}
	return fired
}
