// Package report renders experiment results as aligned ASCII tables
// and CSV, in the layouts of the paper's Tables 1–5 and the series of
// Figures 3–4. The builders here are shared by cmd/tables and the
// benchmark harness so "regenerate a paper table" is one call.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a generic text table.
type Table struct {
	// Title is printed above the table.
	Title string
	// Headers label the columns.
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row. The cell count must match the headers.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells for %d columns", len(cells), len(t.Headers)))
	}
	t.rows = append(t.rows, cells)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (headers first).
// Cells containing commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// F2 formats a float with two decimals, the paper's table precision.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// I formats an int.
func I(v int) string { return fmt.Sprintf("%d", v) }
