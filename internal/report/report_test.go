package report

import (
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tbl := NewTable("Demo", "Name", "Value")
	tbl.AddRow("alpha", "1.00")
	tbl.AddRow("b", "22.50")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "Demo\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows → 5? title+header+rule+2 = 5
		if len(lines) != 5 {
			t.Fatalf("unexpected line count %d: %q", len(lines), out)
		}
	}
	// Columns align: "Value" column starts at the same offset in all rows.
	header := lines[1]
	row1 := lines[3]
	if strings.Index(header, "Value") != strings.Index(row1, "1.00") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestRenderNoTitle(t *testing.T) {
	tbl := NewTable("", "A")
	tbl.AddRow("x")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(sb.String(), "\n") {
		t.Error("empty title must not emit a blank line")
	}
}

func TestAddRowPanicsOnMismatch(t *testing.T) {
	tbl := NewTable("x", "A", "B")
	defer func() {
		if recover() == nil {
			t.Error("mismatched row must panic")
		}
	}()
	tbl.AddRow("only one")
}

func TestRows(t *testing.T) {
	tbl := NewTable("x", "A")
	if tbl.Rows() != 0 {
		t.Error("fresh table must have no rows")
	}
	tbl.AddRow("1")
	if tbl.Rows() != 1 {
		t.Error("Rows must count")
	}
}

func TestCSV(t *testing.T) {
	tbl := NewTable("t", "A", "B")
	tbl.AddRow("plain", `with "quote", and comma`)
	var sb strings.Builder
	if err := tbl.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "A,B\nplain,\"with \"\"quote\"\", and comma\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if F2(1.005) != "1.00" && F2(1.005) != "1.01" { // float rounding either way is fine
		t.Errorf("F2 = %q", F2(1.005))
	}
	if F2(13.684) != "13.68" {
		t.Errorf("F2 = %q", F2(13.684))
	}
	if F1(4.85) != "4.8" && F1(4.85) != "4.9" {
		t.Errorf("F1 = %q", F1(4.85))
	}
	if I(42) != "42" {
		t.Errorf("I = %q", I(42))
	}
}
