package report

import (
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := NewChart("Figure 3", "W")
	if err := c.AddSeries("charging", []float64{2.36, 2.36, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSeries("use", []float64{1.9, 1.2, 1.9, 1.2}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 3") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* charging") || !strings.Contains(out, "o use") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing plot glyphs")
	}
	// The top axis label should be near the max value (2.36 + 5% pad).
	if !strings.Contains(out, "2.4") && !strings.Contains(out, "2.48") {
		t.Errorf("axis labels look wrong:\n%s", out)
	}
}

func TestChartSeriesValidation(t *testing.T) {
	c := NewChart("x", "")
	if err := c.AddSeries("empty", nil); err == nil {
		t.Error("empty series must be rejected")
	}
	if err := c.AddSeries("a", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSeries("b", []float64{1}); err == nil {
		t.Error("length mismatch must be rejected")
	}
}

func TestChartNoSeries(t *testing.T) {
	var sb strings.Builder
	if err := NewChart("x", "").Render(&sb); err == nil {
		t.Error("chart without series must error")
	}
}

func TestChartFlatSeries(t *testing.T) {
	c := NewChart("flat", "")
	if err := c.AddSeries("const", []float64{5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err) // must not divide by zero
	}
}

func TestChartGlyphCycling(t *testing.T) {
	c := NewChart("many", "")
	for i := 0; i < 7; i++ {
		if err := c.AddSeries(string(rune('a'+i)), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if c.glyphs[5] != c.glyphs[0] {
		t.Error("glyphs should cycle after the palette is exhausted")
	}
}
