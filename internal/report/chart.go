package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders one or more aligned series as an ASCII line/column
// chart — enough to eyeball the paper's Figures 3 and 4 in a
// terminal. Each series gets a glyph; overlapping points show the
// later series' glyph.
type Chart struct {
	// Title is printed above the plot.
	Title string
	// Height is the number of plot rows (default 12).
	Height int
	// YLabel annotates the value axis.
	YLabel string

	names  []string
	series [][]float64
	glyphs []byte
}

// defaultGlyphs cycles for successive series.
var defaultGlyphs = []byte{'*', 'o', '+', 'x', '#'}

// NewChart creates an empty chart.
func NewChart(title, yLabel string) *Chart {
	return &Chart{Title: title, YLabel: yLabel, Height: 12}
}

// AddSeries appends a named series. All series must share a length.
func (c *Chart) AddSeries(name string, values []float64) error {
	if len(values) == 0 {
		return fmt.Errorf("report: empty series %q", name)
	}
	if len(c.series) > 0 && len(values) != len(c.series[0]) {
		return fmt.Errorf("report: series %q has %d points, chart has %d",
			name, len(values), len(c.series[0]))
	}
	c.names = append(c.names, name)
	c.series = append(c.series, append([]float64(nil), values...))
	c.glyphs = append(c.glyphs, defaultGlyphs[(len(c.series)-1)%len(defaultGlyphs)])
	return nil
}

// Render writes the chart.
func (c *Chart) Render(w io.Writer) error {
	if len(c.series) == 0 {
		return fmt.Errorf("report: chart %q has no series", c.Title)
	}
	height := c.Height
	if height <= 0 {
		height = 12
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for _, v := range s {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	// Pad the top so peaks do not touch the frame.
	span := hi - lo
	hi += 0.05 * span
	lo -= 0.05 * span
	span = hi - lo

	n := len(c.series[0])
	const colWidth = 3
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", n*colWidth))
	}
	for si, s := range c.series {
		for x, v := range s {
			row := int((hi - v) / span * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][x*colWidth+1] = c.glyphs[si]
		}
	}

	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	for i, name := range c.names {
		if i > 0 {
			b.WriteString("   ")
		}
		fmt.Fprintf(&b, "%c %s", c.glyphs[i], name)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "   (%s)", c.YLabel)
	}
	b.WriteByte('\n')
	for r, row := range grid {
		val := hi - float64(r)/float64(height-1)*span
		fmt.Fprintf(&b, "%7.2f |%s\n", val, string(row))
	}
	b.WriteString("        +" + strings.Repeat("-", n*colWidth) + "\n")
	// X index ruler, every 4th slot labeled.
	ruler := []byte(strings.Repeat(" ", 9+n*colWidth))
	for x := 0; x < n; x += 4 {
		label := fmt.Sprintf("%d", x)
		copy(ruler[9+x*colWidth:], label)
	}
	b.WriteString(strings.TrimRight(string(ruler), " ") + "\n")
	_, err := io.WriteString(w, b.String())
	return err
}
