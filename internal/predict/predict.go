// Package predict derives the *expected* schedules the power manager
// plans with from recorded history. The paper's §2 leaves the
// derivation open — "the recorded charging power for the previous
// period or weighted average of the several previous periods can be
// used" — and this package provides exactly those estimators plus
// exponential smoothing, with accuracy metrics so deployments can
// pick one against their own traces.
//
// All predictors work slot-wise on period-aligned grids: given the
// per-slot observations of past periods, predict the next period's
// per-slot values.
package predict

import (
	"errors"
	"fmt"
	"math"

	"dpm/internal/schedule"
)

// InsufficientHistoryError reports a Predict call before the
// predictor has observed enough periods to estimate from. Callers
// feeding live telemetry hit this on every cold start; they should
// fall back to their prior expectation (errors.As) rather than fail.
type InsufficientHistoryError struct {
	// Predictor is the estimator's Name().
	Predictor string
	// Have and Need count observed vs required periods.
	Have, Need int
}

func (e *InsufficientHistoryError) Error() string {
	return fmt.Sprintf("predict: %s has %d of %d required observed periods",
		e.Predictor, e.Have, e.Need)
}

// IsInsufficientHistory reports whether err is (or wraps) an
// InsufficientHistoryError.
func IsInsufficientHistory(err error) bool {
	var ihe *InsufficientHistoryError
	return errors.As(err, &ihe)
}

// GeometryError reports two grids whose slot geometry (step or
// length) does not line up — an observation against the established
// history, or a prediction against its realization.
type GeometryError struct {
	// Op names the failing operation ("observe" or "evaluate").
	Op string
	// WantLen/WantStep describe the established geometry,
	// GotLen/GotStep the incompatible grid.
	WantLen  int
	WantStep float64
	GotLen   int
	GotStep  float64
}

func (e *GeometryError) Error() string {
	return fmt.Sprintf("predict: %s grid %d×%gs does not match %d×%gs",
		e.Op, e.GotLen, e.GotStep, e.WantLen, e.WantStep)
}

// Predictor estimates the next period's per-slot schedule from the
// observed history. Observe is called once per completed period, in
// order; Predict may be called at any time.
type Predictor interface {
	// Observe records one completed period's per-slot observations.
	Observe(period *schedule.Grid) error
	// Predict returns the estimate for the next period, or an error
	// if no history has been observed yet.
	Predict() (*schedule.Grid, error)
	// Name identifies the predictor in reports.
	Name() string
}

// checkCompatible verifies a new observation against the established
// geometry.
func checkCompatible(have *schedule.Grid, incoming *schedule.Grid) error {
	if incoming == nil {
		return fmt.Errorf("predict: nil observation")
	}
	if have != nil && (have.Step != incoming.Step || have.Len() != incoming.Len()) {
		return &GeometryError{
			Op:      "observe",
			WantLen: have.Len(), WantStep: have.Step,
			GotLen: incoming.Len(), GotStep: incoming.Step,
		}
	}
	return nil
}

// LastPeriod predicts that the next period repeats the previous one —
// the paper's first suggestion.
type LastPeriod struct {
	last *schedule.Grid
}

// NewLastPeriod returns an empty last-period predictor.
func NewLastPeriod() *LastPeriod { return &LastPeriod{} }

// Name implements Predictor.
func (p *LastPeriod) Name() string { return "last-period" }

// Observe implements Predictor.
func (p *LastPeriod) Observe(period *schedule.Grid) error {
	if err := checkCompatible(p.last, period); err != nil {
		return err
	}
	p.last = period.Clone()
	return nil
}

// Predict implements Predictor.
func (p *LastPeriod) Predict() (*schedule.Grid, error) {
	if p.last == nil {
		return nil, &InsufficientHistoryError{Predictor: p.Name(), Have: 0, Need: 1}
	}
	return p.last.Clone(), nil
}

// MovingAverage predicts each slot as the mean of that slot over the
// last K observed periods — the paper's "weighted average of the
// several previous periods" with uniform weights.
type MovingAverage struct {
	k       int
	history []*schedule.Grid
}

// NewMovingAverage returns a predictor averaging the last k periods
// (k ≥ 1).
func NewMovingAverage(k int) (*MovingAverage, error) {
	if k < 1 {
		return nil, fmt.Errorf("predict: window %d < 1", k)
	}
	return &MovingAverage{k: k}, nil
}

// Name implements Predictor.
func (p *MovingAverage) Name() string { return fmt.Sprintf("moving-average(%d)", p.k) }

// Observe implements Predictor.
func (p *MovingAverage) Observe(period *schedule.Grid) error {
	var have *schedule.Grid
	if len(p.history) > 0 {
		have = p.history[0]
	}
	if err := checkCompatible(have, period); err != nil {
		return err
	}
	p.history = append(p.history, period.Clone())
	if len(p.history) > p.k {
		p.history = p.history[len(p.history)-p.k:]
	}
	return nil
}

// Predict implements Predictor. The window must be full: averaging a
// partial window silently over-weights the cold-start periods, so a
// Predict before k observations returns an InsufficientHistoryError
// the caller can fall back on instead of a zero-confidence grid.
func (p *MovingAverage) Predict() (*schedule.Grid, error) {
	if len(p.history) < p.k {
		return nil, &InsufficientHistoryError{Predictor: p.Name(), Have: len(p.history), Need: p.k}
	}
	out := p.history[0].Clone()
	for _, g := range p.history[1:] {
		out = out.Add(g)
	}
	return out.Scale(1 / float64(len(p.history))), nil
}

// Exponential predicts with exponentially weighted smoothing:
// estimate ← α·observation + (1−α)·estimate, per slot.
type Exponential struct {
	alpha    float64
	estimate *schedule.Grid
}

// NewExponential returns a smoother with weight alpha in (0, 1].
func NewExponential(alpha float64) (*Exponential, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("predict: alpha %g outside (0, 1]", alpha)
	}
	return &Exponential{alpha: alpha}, nil
}

// Name implements Predictor.
func (p *Exponential) Name() string { return fmt.Sprintf("exponential(%.2f)", p.alpha) }

// Observe implements Predictor.
func (p *Exponential) Observe(period *schedule.Grid) error {
	if err := checkCompatible(p.estimate, period); err != nil {
		return err
	}
	if p.estimate == nil {
		p.estimate = period.Clone()
		return nil
	}
	for i := range p.estimate.Values {
		p.estimate.Values[i] = p.alpha*period.Values[i] + (1-p.alpha)*p.estimate.Values[i]
	}
	return nil
}

// Predict implements Predictor.
func (p *Exponential) Predict() (*schedule.Grid, error) {
	if p.estimate == nil {
		return nil, &InsufficientHistoryError{Predictor: p.Name(), Have: 0, Need: 1}
	}
	return p.estimate.Clone(), nil
}

// Accuracy metrics ---------------------------------------------------

// Errors quantifies one prediction against the realized period.
type Errors struct {
	// MAE is the mean absolute per-slot error.
	MAE float64
	// RMSE is the root-mean-square per-slot error.
	RMSE float64
	// Peak is the largest absolute per-slot error.
	Peak float64
}

// Evaluate compares a prediction with the realized period. Nil grids
// or mismatched geometry return a typed *GeometryError.
func Evaluate(predicted, actual *schedule.Grid) (Errors, error) {
	if predicted == nil || actual == nil {
		return Errors{}, fmt.Errorf("predict: evaluating nil grid")
	}
	if predicted.Step != actual.Step || predicted.Len() != actual.Len() {
		return Errors{}, &GeometryError{
			Op:      "evaluate",
			WantLen: actual.Len(), WantStep: actual.Step,
			GotLen: predicted.Len(), GotStep: predicted.Step,
		}
	}
	var e Errors
	sumSq := 0.0
	for i := range predicted.Values {
		d := math.Abs(predicted.Values[i] - actual.Values[i])
		e.MAE += d
		sumSq += d * d
		e.Peak = math.Max(e.Peak, d)
	}
	n := float64(predicted.Len())
	e.MAE /= n
	e.RMSE = math.Sqrt(sumSq / n)
	return e, nil
}

// Backtest replays a sequence of realized periods through a
// predictor: for each period after the first, it predicts, compares
// against the realization, then observes it. Periods the predictor
// cannot yet estimate (InsufficientHistoryError — e.g. a
// moving-average window still filling) are observed but not scored,
// so the returned slice holds at most len(periods) − 1 entries and
// exactly the periods the predictor was warmed up for.
func Backtest(p Predictor, periods []*schedule.Grid) ([]Errors, error) {
	if len(periods) < 2 {
		return nil, fmt.Errorf("predict: backtest needs at least 2 periods, got %d", len(periods))
	}
	if err := p.Observe(periods[0]); err != nil {
		return nil, err
	}
	out := make([]Errors, 0, len(periods)-1)
	for _, actual := range periods[1:] {
		predicted, err := p.Predict()
		switch {
		case IsInsufficientHistory(err):
			// Warm-up: nothing to score yet, keep feeding history.
		case err != nil:
			return nil, err
		default:
			e, err := Evaluate(predicted, actual)
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
		if err := p.Observe(actual); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MeanRMSE averages the RMSE over a backtest run.
func MeanRMSE(errs []Errors) float64 {
	if len(errs) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range errs {
		sum += e.RMSE
	}
	return sum / float64(len(errs))
}
