package predict

import (
	"errors"
	"math"
	"testing"

	"dpm/internal/schedule"
	"dpm/internal/trace"
)

func grid(vals ...float64) *schedule.Grid { return schedule.NewGrid(4.8, vals) }

func TestLastPeriod(t *testing.T) {
	p := NewLastPeriod()
	if _, err := p.Predict(); err == nil {
		t.Error("prediction without history must error")
	}
	if err := p.Observe(grid(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	got, err := p.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(grid(1, 2, 3), 0) {
		t.Errorf("last-period = %v", got.Values)
	}
	// A newer period replaces the old.
	if err := p.Observe(grid(4, 5, 6)); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Predict()
	if !got.Equal(grid(4, 5, 6), 0) {
		t.Errorf("last-period after update = %v", got.Values)
	}
	if p.Name() != "last-period" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestLastPeriodGeometryCheck(t *testing.T) {
	p := NewLastPeriod()
	if err := p.Observe(grid(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(grid(1, 2, 3)); err == nil {
		t.Error("geometry change must be rejected")
	}
	if err := p.Observe(nil); err == nil {
		t.Error("nil observation must be rejected")
	}
}

func TestMovingAverage(t *testing.T) {
	p, err := NewMovingAverage(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict(); err == nil {
		t.Error("prediction without history must error")
	}
	p.Observe(grid(2, 4))
	p.Observe(grid(4, 8))
	got, err := p.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(grid(3, 6), 1e-12) {
		t.Errorf("moving average = %v", got.Values)
	}
	// Window slides: a third observation evicts the first.
	p.Observe(grid(8, 0))
	got, _ = p.Predict()
	if !got.Equal(grid(6, 4), 1e-12) {
		t.Errorf("slid window = %v", got.Values)
	}
	if p.Name() != "moving-average(2)" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestMovingAverageValidation(t *testing.T) {
	if _, err := NewMovingAverage(0); err == nil {
		t.Error("window 0 must be rejected")
	}
}

func TestExponential(t *testing.T) {
	p, err := NewExponential(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict(); err == nil {
		t.Error("prediction without history must error")
	}
	p.Observe(grid(4))
	p.Observe(grid(8))
	got, _ := p.Predict()
	if math.Abs(got.Values[0]-6) > 1e-12 { // 0.5·8 + 0.5·4
		t.Errorf("exponential = %v", got.Values)
	}
	if p.Name() != "exponential(0.50)" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestExponentialValidation(t *testing.T) {
	if _, err := NewExponential(0); err == nil {
		t.Error("alpha 0 must be rejected")
	}
	if _, err := NewExponential(1.5); err == nil {
		t.Error("alpha > 1 must be rejected")
	}
	if _, err := NewExponential(1); err != nil {
		t.Error("alpha 1 is legal (degenerates to last-period)")
	}
}

func TestEvaluate(t *testing.T) {
	e, err := Evaluate(grid(1, 2, 3), grid(1, 2, 3))
	if err != nil || e.MAE != 0 || e.RMSE != 0 || e.Peak != 0 {
		t.Errorf("perfect prediction errors = %+v, %v", e, err)
	}
	e, err = Evaluate(grid(0, 0), grid(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.MAE-3.5) > 1e-12 || math.Abs(e.RMSE-math.Sqrt(12.5)) > 1e-12 || e.Peak != 4 {
		t.Errorf("errors = %+v", e)
	}
	if _, err := Evaluate(grid(1), grid(1, 2)); err == nil {
		t.Error("geometry mismatch must error")
	}
}

func TestBacktestOnNoisyScenario(t *testing.T) {
	// Periods are the scenario I charging schedule with seeded jitter;
	// averaging predictors must beat last-period on mean RMSE.
	base := trace.ScenarioI().Charging
	var periods []*schedule.Grid
	for i := int64(0); i < 12; i++ {
		periods = append(periods, trace.Perturb(base, 0.3, 100+i))
	}

	last := NewLastPeriod()
	avg, err := NewMovingAverage(6)
	if err != nil {
		t.Fatal(err)
	}
	lastErrs, err := Backtest(last, periods)
	if err != nil {
		t.Fatal(err)
	}
	avgErrs, err := Backtest(avg, periods)
	if err != nil {
		t.Fatal(err)
	}
	// The moving average scores only once its 6-period window is full,
	// so its backtest covers periods 6..11 — compare last-period over
	// the same evaluated periods.
	if len(lastErrs) != 11 || len(avgErrs) != 6 {
		t.Fatalf("backtest lengths %d/%d", len(lastErrs), len(avgErrs))
	}
	if MeanRMSE(avgErrs) >= MeanRMSE(lastErrs[5:]) {
		t.Errorf("moving average RMSE %.3f should beat last-period %.3f on i.i.d. jitter",
			MeanRMSE(avgErrs), MeanRMSE(lastErrs[5:]))
	}
}

func TestBacktestValidation(t *testing.T) {
	if _, err := Backtest(NewLastPeriod(), []*schedule.Grid{grid(1)}); err == nil {
		t.Error("single-period backtest must error")
	}
}

func TestMeanRMSEEmpty(t *testing.T) {
	if MeanRMSE(nil) != 0 {
		t.Error("empty MeanRMSE must be 0")
	}
}

func TestMovingAveragePredictBeforeWindow(t *testing.T) {
	// A Predict before the window fills must return a typed
	// InsufficientHistoryError carrying the exact have/need counts, and
	// succeed on the observation that completes the window.
	for _, tc := range []struct {
		k, observed int
	}{
		{1, 0},
		{2, 1},
		{3, 2},
		{6, 5},
		{6, 0},
	} {
		p := mustMA(t, tc.k)
		for i := 0; i < tc.observed; i++ {
			if err := p.Observe(grid(1, 2)); err != nil {
				t.Fatal(err)
			}
		}
		_, err := p.Predict()
		var ihe *InsufficientHistoryError
		if !errors.As(err, &ihe) {
			t.Fatalf("MA(%d) after %d observations: err = %v, want InsufficientHistoryError",
				tc.k, tc.observed, err)
		}
		if ihe.Have != tc.observed || ihe.Need != tc.k {
			t.Errorf("MA(%d) after %d observations: have/need = %d/%d", tc.k, tc.observed, ihe.Have, ihe.Need)
		}
		if !IsInsufficientHistory(err) {
			t.Error("IsInsufficientHistory must match the typed error")
		}
		// One more observation completes the window.
		for i := tc.observed; i < tc.k; i++ {
			if err := p.Observe(grid(1, 2)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := p.Predict(); err != nil {
			t.Errorf("MA(%d) with a full window: %v", tc.k, err)
		}
	}
}

func TestTypedGeometryErrors(t *testing.T) {
	for _, tc := range []struct {
		name              string
		err               error
		op                string
		wantLen, gotLen   int
		wantStep, gotStep float64
	}{
		{
			name: "evaluate length mismatch",
			err: func() error {
				_, err := Evaluate(grid(1), grid(1, 2))
				return err
			}(),
			op: "evaluate", wantLen: 2, gotLen: 1, wantStep: 4.8, gotStep: 4.8,
		},
		{
			name: "evaluate step mismatch",
			err: func() error {
				_, err := Evaluate(schedule.NewGrid(1, []float64{1, 2}), grid(1, 2))
				return err
			}(),
			op: "evaluate", wantLen: 2, gotLen: 2, wantStep: 4.8, gotStep: 1,
		},
		{
			name: "observe geometry change",
			err: func() error {
				p := NewLastPeriod()
				if err := p.Observe(grid(1, 2)); err != nil {
					return err
				}
				return p.Observe(grid(1, 2, 3))
			}(),
			op: "observe", wantLen: 2, gotLen: 3, wantStep: 4.8, gotStep: 4.8,
		},
	} {
		var ge *GeometryError
		if !errors.As(tc.err, &ge) {
			t.Fatalf("%s: err = %v, want GeometryError", tc.name, tc.err)
		}
		if ge.Op != tc.op || ge.WantLen != tc.wantLen || ge.GotLen != tc.gotLen ||
			ge.WantStep != tc.wantStep || ge.GotStep != tc.gotStep {
			t.Errorf("%s: %+v", tc.name, ge)
		}
	}
}

func TestBacktestSkipsWarmup(t *testing.T) {
	// A window larger than the history observes every period but never
	// scores one; the backtest returns zero errors, not a failure.
	p := mustMA(t, 10)
	periods := []*schedule.Grid{grid(1), grid(2), grid(3)}
	errs, err := Backtest(p, periods)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 0 {
		t.Errorf("backtest inside warm-up scored %d periods, want 0", len(errs))
	}
}

func TestPredictorsReturnCopies(t *testing.T) {
	for _, p := range []Predictor{NewLastPeriod(), mustMA(t, 1), mustExp(t, 0.3)} {
		if err := p.Observe(grid(1, 2)); err != nil {
			t.Fatal(err)
		}
		got, err := p.Predict()
		if err != nil {
			t.Fatal(err)
		}
		got.Values[0] = 99
		again, _ := p.Predict()
		if again.Values[0] == 99 {
			t.Errorf("%s: Predict must return an independent copy", p.Name())
		}
	}
}

func mustMA(t *testing.T, k int) *MovingAverage {
	t.Helper()
	p, err := NewMovingAverage(k)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustExp(t *testing.T, a float64) *Exponential {
	t.Helper()
	p, err := NewExponential(a)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
