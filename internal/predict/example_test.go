package predict_test

import (
	"fmt"

	"dpm/internal/predict"
	"dpm/internal/schedule"
)

// Derive the expected charging schedule from recorded periods, the
// way the paper's §2 suggests ("weighted average of the several
// previous periods").
func ExampleMovingAverage() {
	p, err := predict.NewMovingAverage(3)
	if err != nil {
		panic(err)
	}
	// Three observed periods with drifting output.
	for _, scale := range []float64{1.0, 0.9, 0.8} {
		observed := schedule.NewGrid(4.8, []float64{2 * scale, 2 * scale, 0, 0})
		if err := p.Observe(observed); err != nil {
			panic(err)
		}
	}
	expected, err := p.Predict()
	if err != nil {
		panic(err)
	}
	fmt.Printf("expected charging: %.2f W in sunlight, %.2f W in eclipse\n",
		expected.Values[0], expected.Values[2])
	// Output:
	// expected charging: 1.80 W in sunlight, 0.00 W in eclipse
}
