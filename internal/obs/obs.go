// Package obs is the repo's zero-dependency telemetry layer: span
// tracing threaded through context.Context, fixed-bucket latency
// histograms and counters rendered in the Prometheus text exposition
// format, structured JSON logging, and request-id plumbing. The dpmd
// service (internal/server) owns one Registry and attaches a Recorder
// to every request context; the planning pipeline (internal/pipeline,
// internal/alloc, internal/params) marks its phases with StartSpan and
// stays completely ignorant of where the measurements go.
//
// The hot path is guarded by a nil fast path: a context without a
// Recorder makes StartSpan return (ctx, nil) after one context lookup,
// and every method on a nil *Span is a no-op — library callers that
// never attach a Recorder (the experiment harness, the CLI tools, the
// benchmarks) pay one pointer-typed context.Value per span site and
// nothing else. With a Recorder attached but tracing off (the service
// default), spans record only their duration into a per-stage
// histogram; the span tree itself is materialized only for requests
// that opt in (dpmd's X-Dpmd-Trace: 1 header).
package obs

import (
	"context"
	"sync"
	"time"
)

// recorderKey carries the *Recorder; spanKey carries the current
// parent *Span (only when a span tree is being collected).
type recorderKey struct{}
type spanKey struct{}

// Recorder is what a context needs for StartSpan to do work. Both
// fields are optional: Stages alone records per-stage duration
// histograms (the service's always-on mode); Trace additionally
// collects the span tree for debug responses.
type Recorder struct {
	// Stages receives one observation per ended span, labeled by the
	// span's name. May be nil.
	Stages *HistogramVec
	// Trace, when non-nil, collects the span tree.
	Trace *Trace
}

// WithRecorder returns a context carrying rec. A nil rec returns ctx
// unchanged.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey{}, rec)
}

// RecorderFrom returns the context's Recorder, or nil.
func RecorderFrom(ctx context.Context) *Recorder {
	rec, _ := ctx.Value(recorderKey{}).(*Recorder)
	return rec
}

// Trace collects one request's span tree. The zero value is not
// usable; call NewTrace. All methods are safe for concurrent use —
// batch fan-out may end sibling spans from different goroutines.
type Trace struct {
	start time.Time

	mu    sync.Mutex
	roots []*Span
}

// NewTrace returns an empty trace whose span offsets are measured
// from now.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

// Start returns the trace's epoch: the instant span offsets are
// measured from.
func (t *Trace) Start() time.Time { return t.start }

func (t *Trace) addRoot(s *Span) {
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
}

// Span is one timed region. A nil *Span is valid and inert, so call
// sites never branch on whether telemetry is attached.
type Span struct {
	rec   *Recorder
	name  string
	start time.Time

	// The fields below are used only when rec.Trace is non-nil.
	mu       sync.Mutex
	ended    bool
	duration time.Duration
	attrs    []Attr
	children []*Span
}

// Attr is one span annotation.
type Attr struct {
	// Key names the annotation (e.g. "violations").
	Key string
	// Value is the annotation payload; kept as any so counts, flags
	// and cache dispositions all fit.
	Value any
}

// StartSpan begins a span named name. Without a Recorder in ctx it
// returns (ctx, nil) — the nil fast path. With one, the span's
// duration is observed into Recorder.Stages on End, and when a Trace
// is being collected the span joins the tree under the nearest
// enclosing span (the returned context carries it as the new parent).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	rec, _ := ctx.Value(recorderKey{}).(*Recorder)
	if rec == nil {
		return ctx, nil
	}
	s := &Span{rec: rec, name: name, start: time.Now()}
	if rec.Trace != nil {
		if parent, _ := ctx.Value(spanKey{}).(*Span); parent != nil {
			parent.addChild(s)
		} else {
			rec.Trace.addRoot(s)
		}
		ctx = context.WithValue(ctx, spanKey{}, s)
	}
	return ctx, s
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// SetAttr annotates the span. It is a no-op on a nil span and when no
// span tree is being collected (annotations exist for trace output,
// not histograms).
func (s *Span) SetAttr(key string, value any) {
	if s == nil || s.rec.Trace == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End closes the span: its duration lands in the per-stage histogram
// and, when a tree is being collected, in the trace. End is
// idempotent for the tree (the first call wins) but should be called
// exactly once; nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	if s.rec.Trace != nil {
		s.mu.Lock()
		if !s.ended {
			s.ended = true
			s.duration = d
		}
		s.mu.Unlock()
	}
	if s.rec.Stages != nil {
		s.rec.Stages.Observe(s.name, d.Seconds())
	}
}

// SpanNode is the wire form of one span: name, offset from the trace
// start, duration, annotations, children. Durations are microseconds
// so the JSON stays integral and compact.
type SpanNode struct {
	// Name is the span name (e.g. "alloc.Compute").
	Name string `json:"name"`
	// StartUS is the span's start offset from the trace epoch in
	// microseconds.
	StartUS int64 `json:"startUs"`
	// DurUS is the span's duration in microseconds.
	DurUS int64 `json:"durUs"`
	// Attrs carries the annotations (JSON objects marshal with sorted
	// keys, so the wire form is deterministic for a given span).
	Attrs map[string]any `json:"attrs,omitempty"`
	// Spans are the child spans, in start order.
	Spans []SpanNode `json:"spans,omitempty"`
}

// Tree snapshots the collected spans as a forest of SpanNodes. Spans
// that have not Ended yet report the duration so far.
func (t *Trace) Tree() []SpanNode {
	t.mu.Lock()
	roots := append([]*Span(nil), t.roots...)
	t.mu.Unlock()
	out := make([]SpanNode, len(roots))
	for i, s := range roots {
		out[i] = s.node(t.start)
	}
	return out
}

func (s *Span) node(epoch time.Time) SpanNode {
	s.mu.Lock()
	d := s.duration
	if !s.ended {
		d = time.Since(s.start)
	}
	n := SpanNode{
		Name:    s.name,
		StartUS: s.start.Sub(epoch).Microseconds(),
		DurUS:   d.Microseconds(),
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			n.Attrs[a.Key] = a.Value
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if len(children) > 0 {
		n.Spans = make([]SpanNode, len(children))
		for i, c := range children {
			n.Spans[i] = c.node(epoch)
		}
	}
	return n
}
