package obs

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Structured logging -----------------------------------------------
//
// The Logger writes one event per line in either JSON (machine
// ingestion: one object with "ts" and "msg" first, then the event's
// fields in call order) or logfmt-style text (human tails). dpmd uses
// it for request access logs and the one startup configuration line;
// the -log-json flag picks the encoding.

// Field is one structured log field.
type Field struct {
	// Key names the field.
	Key string
	// Value is the payload; anything json.Marshal accepts.
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Logger writes structured events. Safe for concurrent use; each
// event is written in one Write call so lines from concurrent
// requests never interleave.
type Logger struct {
	mu   sync.Mutex
	w    io.Writer
	json bool
	// now is stubbed by tests for deterministic timestamps.
	now func() time.Time
}

// NewLogger returns a logger writing to w; jsonMode selects JSON
// lines over logfmt text.
func NewLogger(w io.Writer, jsonMode bool) *Logger {
	return &Logger{w: w, json: jsonMode, now: time.Now}
}

// JSON reports whether the logger emits JSON lines.
func (l *Logger) JSON() bool { return l.json }

// Event writes one log line. Fields render in call order; values that
// fail to marshal render as their error string rather than dropping
// the line.
func (l *Logger) Event(msg string, fields ...Field) {
	if l == nil {
		return
	}
	var buf bytes.Buffer
	ts := l.now().UTC().Format(time.RFC3339Nano)
	if l.json {
		buf.WriteString(`{"ts":`)
		buf.Write(mustJSON(ts))
		buf.WriteString(`,"msg":`)
		buf.Write(mustJSON(msg))
		for _, f := range fields {
			buf.WriteByte(',')
			buf.Write(mustJSON(f.Key))
			buf.WriteByte(':')
			buf.Write(mustJSON(f.Value))
		}
		buf.WriteString("}\n")
	} else {
		buf.WriteString(ts)
		buf.WriteByte(' ')
		buf.WriteString(msg)
		for _, f := range fields {
			fmt.Fprintf(&buf, " %s=%v", f.Key, f.Value)
		}
		buf.WriteByte('\n')
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(buf.Bytes()) //nolint:errcheck
}

// mustJSON marshals v, falling back to a quoted error description so
// a bad value never drops a log line.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprintf("!marshal: %v", err))
	}
	return b
}

// Request IDs ------------------------------------------------------

// idPrefix is a per-process random prefix; idCounter disambiguates
// requests within the process. Together they make ids unique across
// restarts without per-request entropy draws.
var (
	idPrefix  = newIDPrefix()
	idCounter atomic.Uint64
)

func newIDPrefix() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; fall back to
		// the process start time so ids stay distinguishable.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// NewRequestID returns a fresh request id: a per-process random
// prefix plus a monotone counter, e.g. "9f1c2ab34d5e-000042".
func NewRequestID() string {
	return fmt.Sprintf("%s-%06d", idPrefix, idCounter.Add(1))
}

// MaxRequestIDLen bounds inbound X-Request-Id values; longer ids are
// replaced rather than truncated so logs never carry half an id.
const MaxRequestIDLen = 64

// SanitizeRequestID returns s if it is usable as a request id —
// non-empty, at most MaxRequestIDLen characters, drawn from
// [A-Za-z0-9._-] — and "" otherwise. Callers generate a fresh id on
// "".
func SanitizeRequestID(s string) string {
	if s == "" || len(s) > MaxRequestIDLen {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return s
}
