package obs

import (
	"io"
	"runtime"
	"time"
)

// RuntimeCollector writes the Go runtime gauges a scrape wants next
// to the service's own counters: goroutine count, heap occupancy, GC
// activity, plus the process start-time/uptime pair (the Prometheus
// convention for detecting restarts and rate() resets).
type RuntimeCollector struct {
	// Start is the process (or server) start instant.
	Start time.Time
	// Now is stubbed by tests; nil means time.Now.
	Now func() time.Time
}

// WriteProm implements Collector.
func (rc RuntimeCollector) WriteProm(w io.Writer) error {
	now := time.Now
	if rc.Now != nil {
		now = rc.Now
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for _, g := range []struct {
		name, help string
		value      float64
	}{
		{"dpmd_start_time_seconds", "Unix time the service started.", float64(rc.Start.UnixNano()) / 1e9},
		{"dpmd_uptime_seconds", "Seconds since the service started.", now().Sub(rc.Start).Seconds()},
		{"go_goroutines", "Number of goroutines.", float64(runtime.NumGoroutine())},
		{"go_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc)},
		{"go_heap_sys_bytes", "Bytes of heap obtained from the OS.", float64(ms.HeapSys)},
		{"go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC)},
		{"go_gc_pause_seconds_total", "Cumulative GC pause time.", float64(ms.PauseTotalNs) / 1e9},
	} {
		if err := WriteGauge(w, g.name, g.help, g.value); err != nil {
			return err
		}
	}
	return nil
}
