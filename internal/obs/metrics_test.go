package obs_test

import (
	"io"
	"strings"
	"sync"
	"testing"

	"dpm/internal/obs"
)

// TestPrometheusGolden locks the full exposition format: HELP/TYPE
// headers, cumulative buckets, _sum/_count, counters, gauges — the
// exact bytes a scrape sees for a deterministic set of observations.
func TestPrometheusGolden(t *testing.T) {
	reg := obs.NewRegistry()
	hist := obs.NewHistogramVec("dpmd_http_request_duration_seconds",
		"Request latency by endpoint.", "endpoint", []float64{0.001, 0.01, 0.1})
	hist.Observe("/v1/plan", 0.0005)
	hist.Observe("/v1/plan", 0.0005)
	hist.Observe("/v1/plan", 0.05)
	hist.Observe("/v1/plan", 2)
	hist.Observe("/healthz", 0.002)
	reg.Register(hist)

	counters := obs.NewCounterVec("dpmd_http_request_errors_total",
		"Non-2xx responses by endpoint.", "endpoint")
	counters.Add("/v1/plan", 3)
	reg.Register(counters)

	reg.Register(obs.CollectorFunc(func(w io.Writer) error {
		return obs.WriteGauge(w, "dpmd_pool_size", "Configured worker pool size.", 8)
	}))

	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dpmd_http_request_duration_seconds Request latency by endpoint.
# TYPE dpmd_http_request_duration_seconds histogram
dpmd_http_request_duration_seconds_bucket{endpoint="/healthz",le="0.001"} 0
dpmd_http_request_duration_seconds_bucket{endpoint="/healthz",le="0.01"} 1
dpmd_http_request_duration_seconds_bucket{endpoint="/healthz",le="0.1"} 1
dpmd_http_request_duration_seconds_bucket{endpoint="/healthz",le="+Inf"} 1
dpmd_http_request_duration_seconds_sum{endpoint="/healthz"} 0.002
dpmd_http_request_duration_seconds_count{endpoint="/healthz"} 1
dpmd_http_request_duration_seconds_bucket{endpoint="/v1/plan",le="0.001"} 2
dpmd_http_request_duration_seconds_bucket{endpoint="/v1/plan",le="0.01"} 2
dpmd_http_request_duration_seconds_bucket{endpoint="/v1/plan",le="0.1"} 3
dpmd_http_request_duration_seconds_bucket{endpoint="/v1/plan",le="+Inf"} 4
dpmd_http_request_duration_seconds_sum{endpoint="/v1/plan"} 2.051
dpmd_http_request_duration_seconds_count{endpoint="/v1/plan"} 4
# HELP dpmd_http_request_errors_total Non-2xx responses by endpoint.
# TYPE dpmd_http_request_errors_total counter
dpmd_http_request_errors_total{endpoint="/v1/plan"} 3
# HELP dpmd_pool_size Configured worker pool size.
# TYPE dpmd_pool_size gauge
dpmd_pool_size 8
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// under -race this proves the observation path is race-free, and the
// final count/sum prove no observation was lost.
func TestHistogramConcurrent(t *testing.T) {
	h := obs.NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	const goroutines, perG = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g%5) * 0.005)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	var wantSum float64
	for g := 0; g < goroutines; g++ {
		wantSum += float64(g%5) * 0.005 * perG
	}
	if got := h.Sum(); got < wantSum*0.999999 || got > wantSum*1.000001 {
		t.Fatalf("sum = %g, want ~%g", got, wantSum)
	}
}

// TestHistogramVecConcurrent exercises concurrent series creation and
// observation across label values under -race.
func TestHistogramVecConcurrent(t *testing.T) {
	v := obs.NewHistogramVec("x_seconds", "x", "stage", nil)
	stages := []string{"validate", "plan", "params", "simulate"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.Observe(stages[(g+i)%len(stages)], 0.001)
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for _, s := range stages {
		total += v.With(s).Count()
	}
	if total != 8*1000 {
		t.Fatalf("total observations = %d, want 8000", total)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := obs.NewHistogram([]float64{1, 2})
	h.Observe(1)   // on the bound: le="1" is inclusive
	h.Observe(1.5) // second bucket
	h.Observe(3)   // +Inf
	var sb strings.Builder
	v := obs.NewHistogramVec("edge_seconds", "e", "l", []float64{1, 2})
	v.With("a") // empty series still renders
	v.Observe("b", 1)
	if err := v.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `edge_seconds_bucket{l="b",le="1"} 1`) {
		t.Fatalf("le=\"1\" must include an observation of exactly 1:\n%s", out)
	}
	if !strings.Contains(out, `edge_seconds_count{l="a"} 0`) {
		t.Fatalf("empty series must render a zero count:\n%s", out)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
}
