package obs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"dpm/internal/obs"
)

// TestNilFastPath: without a Recorder, StartSpan must return the
// context unchanged and a nil span whose methods are all no-ops.
func TestNilFastPath(t *testing.T) {
	ctx := context.Background()
	ctx2, span := obs.StartSpan(ctx, "anything")
	if ctx2 != ctx {
		t.Fatal("StartSpan without a recorder must return the context unchanged")
	}
	if span != nil {
		t.Fatal("StartSpan without a recorder must return a nil span")
	}
	// All nil-span methods must be safe.
	span.SetAttr("k", 1)
	span.End()
}

// TestSpanTree checks parent/child linkage, attrs, and the stage
// histogram observations.
func TestSpanTree(t *testing.T) {
	stages := obs.NewHistogramVec("stage_seconds", "per-stage", "stage", nil)
	tr := obs.NewTrace()
	ctx := obs.WithRecorder(context.Background(), &obs.Recorder{Stages: stages, Trace: tr})

	ctx, root := obs.StartSpan(ctx, "root")
	cctx, child := obs.StartSpan(ctx, "child")
	_, grand := obs.StartSpan(cctx, "grandchild")
	grand.SetAttr("violations", 3)
	grand.End()
	child.End()
	_, sib := obs.StartSpan(ctx, "sibling")
	sib.End()
	root.End()

	tree := tr.Tree()
	if len(tree) != 1 || tree[0].Name != "root" {
		t.Fatalf("tree roots = %+v, want single root", tree)
	}
	r := tree[0]
	if len(r.Spans) != 2 || r.Spans[0].Name != "child" || r.Spans[1].Name != "sibling" {
		t.Fatalf("root children = %+v", r.Spans)
	}
	g := r.Spans[0].Spans
	if len(g) != 1 || g[0].Name != "grandchild" {
		t.Fatalf("grandchildren = %+v", g)
	}
	if got := g[0].Attrs["violations"]; got != 3 {
		t.Fatalf("violations attr = %v, want 3", got)
	}
	if g[0].DurUS < 0 || r.DurUS < 0 {
		t.Fatal("negative span durations")
	}
	for _, name := range []string{"root", "child", "grandchild", "sibling"} {
		if stages.With(name).Count() != 1 {
			t.Fatalf("stage %q count = %d, want 1", name, stages.With(name).Count())
		}
	}
	// The tree must survive JSON marshaling (the wire path).
	if _, err := json.Marshal(tree); err != nil {
		t.Fatalf("marshal tree: %v", err)
	}
}

// TestStagesOnlyRecorder: with a Recorder but no Trace, spans observe
// durations without building a tree and SetAttr stays cheap/no-op.
func TestStagesOnlyRecorder(t *testing.T) {
	stages := obs.NewHistogramVec("stage_seconds", "per-stage", "stage", nil)
	ctx := obs.WithRecorder(context.Background(), &obs.Recorder{Stages: stages})
	ctx2, span := obs.StartSpan(ctx, "work")
	if ctx2 != ctx {
		t.Fatal("stages-only StartSpan should not derive a new context")
	}
	span.SetAttr("ignored", true)
	span.End()
	if stages.With("work").Count() != 1 {
		t.Fatal("stage observation missing")
	}
}

func TestLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	l := obs.NewLogger(&buf, true)
	l.Event("request", obs.F("method", "POST"), obs.F("status", 200), obs.F("dur_ms", 1.25))
	line := buf.String()
	if !strings.HasSuffix(line, "\n") {
		t.Fatalf("log line not newline-terminated: %q", line)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, line)
	}
	if m["msg"] != "request" || m["method"] != "POST" || m["status"] != float64(200) {
		t.Fatalf("unexpected fields: %v", m)
	}
	if _, ok := m["ts"]; !ok {
		t.Fatal("missing ts")
	}
}

func TestLoggerText(t *testing.T) {
	var buf bytes.Buffer
	l := obs.NewLogger(&buf, false)
	l.Event("config", obs.F("pool", 8))
	if got := buf.String(); !strings.Contains(got, "config") || !strings.Contains(got, "pool=8") {
		t.Fatalf("unexpected text line: %q", got)
	}
}

func TestRequestIDs(t *testing.T) {
	a, b := obs.NewRequestID(), obs.NewRequestID()
	if a == b || a == "" {
		t.Fatalf("ids not unique: %q %q", a, b)
	}
	if obs.SanitizeRequestID(a) != a {
		t.Fatalf("generated id %q rejected by sanitizer", a)
	}
	for _, bad := range []string{"", "has space", "semi;colon", "new\nline", strings.Repeat("x", 65)} {
		if got := obs.SanitizeRequestID(bad); got != "" {
			t.Fatalf("SanitizeRequestID(%q) = %q, want \"\"", bad, got)
		}
	}
	if got := obs.SanitizeRequestID("node-42.fleet_A"); got != "node-42.fleet_A" {
		t.Fatalf("valid id rejected: %q", got)
	}
}
