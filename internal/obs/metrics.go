package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Prometheus-format metrics ----------------------------------------
//
// A Registry is an ordered list of Collectors, each of which writes
// one or more metric families in the Prometheus text exposition
// format (# HELP / # TYPE headers, cumulative _bucket/_sum/_count
// lines for histograms). Histograms and counters are lock-free on the
// observation path: fixed bucket bounds chosen at construction,
// atomic bucket counters, and a CAS loop for the float64 sum — the
// same discipline internal/metrics uses for its endpoint counters.

// DefaultLatencyBuckets spans 100 µs to 10 s in a coarse 1-2.5-5
// progression — wide enough for a cache hit (~100 µs) and a worst-case
// machine simulation (seconds) to land in distinct buckets.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Collector writes metric families in Prometheus text exposition
// format.
type Collector interface {
	WriteProm(w io.Writer) error
}

// CollectorFunc adapts a function to the Collector interface —
// registries use it for scrape-time families (runtime gauges, cache
// counters snapshotted from their owners).
type CollectorFunc func(w io.Writer) error

// WriteProm implements Collector.
func (f CollectorFunc) WriteProm(w io.Writer) error { return f(w) }

// Registry is an ordered set of collectors. Registration order is
// exposition order, so /metrics output is stable.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a collector.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// WriteProm renders every registered collector in registration order.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()
	for _, c := range collectors {
		if err := c.WriteProm(w); err != nil {
			return err
		}
	}
	return nil
}

// Histogram is one fixed-bucket latency histogram. Observations are
// lock-free; the exposition is cumulative per Prometheus convention.
type Histogram struct {
	// bounds are the inclusive bucket upper bounds, ascending.
	bounds []float64
	// counts has len(bounds)+1 entries; the last is the +Inf bucket.
	// Each entry counts observations landing in that bucket alone
	// (cumulation happens at exposition time).
	counts []atomic.Uint64
	// sumBits is math.Float64bits of the running observation sum.
	sumBits atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending bucket
// bounds (DefaultLatencyBuckets when nil).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; most observations are
	// small, so the search beats a linear scan only marginally, but it
	// keeps Observe O(log n) for any bucket layout.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// HistogramVec is a family of histograms sharing a name and bucket
// layout, keyed by one label value (endpoint path, pipeline stage).
// Series are created on first observation; the label cardinality is
// bounded by the caller (span names and endpoint paths form small
// fixed sets).
type HistogramVec struct {
	name, help, label string
	bounds            []float64

	mu     sync.RWMutex
	series map[string]*Histogram
}

// NewHistogramVec returns an empty family. bounds nil means
// DefaultLatencyBuckets.
func NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return &HistogramVec{
		name:   name,
		help:   help,
		label:  label,
		bounds: append([]float64(nil), bounds...),
		series: make(map[string]*Histogram),
	}
}

// With returns the histogram for the label value, creating it on
// first sight.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h := v.series[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.series[value]; h == nil {
		h = NewHistogram(v.bounds)
		v.series[value] = h
	}
	return h
}

// Observe records one value for the label value.
func (v *HistogramVec) Observe(value string, x float64) {
	v.With(value).Observe(x)
}

// WriteProm renders the family: HELP/TYPE once, then per-series
// cumulative _bucket lines plus _sum and _count, series sorted by
// label value.
func (v *HistogramVec) WriteProm(w io.Writer) error {
	v.mu.RLock()
	keys := make([]string, 0, len(v.series))
	for k := range v.series {
		keys = append(keys, k)
	}
	hists := make([]*Histogram, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		hists = append(hists, v.series[k])
	}
	v.mu.RUnlock()
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", v.name, v.help, v.name); err != nil {
		return err
	}
	for i, k := range keys {
		h := hists[i]
		var cum uint64
		for j, bound := range h.bounds {
			cum += h.counts[j].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n",
				v.name, v.label, escapeLabel(k), formatFloat(bound), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", v.name, v.label, escapeLabel(k), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum{%s=%q} %s\n%s_count{%s=%q} %d\n",
			v.name, v.label, escapeLabel(k), formatFloat(h.Sum()),
			v.name, v.label, escapeLabel(k), cum); err != nil {
			return err
		}
	}
	return nil
}

// Counter is a monotonically increasing counter.
type Counter struct{ n atomic.Uint64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// CounterVec is a family of counters keyed by one label value.
type CounterVec struct {
	name, help, label string

	mu     sync.RWMutex
	series map[string]*Counter
}

// NewCounterVec returns an empty counter family.
func NewCounterVec(name, help, label string) *CounterVec {
	return &CounterVec{name: name, help: help, label: label, series: make(map[string]*Counter)}
}

// With returns the counter for the label value, creating it on first
// sight.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c := v.series[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.series[value]; c == nil {
		c = &Counter{}
		v.series[value] = c
	}
	return c
}

// Add increments the label value's counter.
func (v *CounterVec) Add(value string, delta uint64) { v.With(value).Add(delta) }

// WriteProm renders the family, series sorted by label value.
func (v *CounterVec) WriteProm(w io.Writer) error {
	v.mu.RLock()
	keys := make([]string, 0, len(v.series))
	for k := range v.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	counts := make([]uint64, len(keys))
	for i, k := range keys {
		counts[i] = v.series[k].Value()
	}
	v.mu.RUnlock()
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", v.name, v.help, v.name); err != nil {
		return err
	}
	for i, k := range keys {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, escapeLabel(k), counts[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteGauge writes one unlabeled gauge with its HELP/TYPE header —
// the building block for scrape-time collectors (runtime stats,
// uptime).
func WriteGauge(w io.Writer, name, help string, value float64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		name, help, name, name, formatFloat(value))
	return err
}

// WriteLabeledCounter writes one counter sample with explicit label
// pairs, without headers — callers writing a family themselves (e.g.
// per-shard cache counters) emit the header once and then a run of
// these.
func WriteLabeledCounter(w io.Writer, name string, labels [][2]string, value uint64) error {
	var sb strings.Builder
	for i, kv := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", kv[0], escapeLabel(kv[1]))
	}
	_, err := fmt.Fprintf(w, "%s{%s} %d\n", name, sb.String(), value)
	return err
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest exact decimal form ('g' with -1 precision).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes backslash, double quote and newline in a label
// value per the exposition format. %q adds the surrounding quotes and
// handles " and \ itself, so this only normalizes newlines (which %q
// would render as \n anyway); kept explicit for clarity and for
// callers composing label strings manually.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\n") {
		return v
	}
	return strings.ReplaceAll(v, "\n", " ")
}
