package battery_test

import (
	"fmt"

	"dpm/internal/battery"
)

// A slot of simultaneous solar charging and computation: the load is
// fed directly from the panel, only the net surplus charges the
// battery, and overflow past Cmax is wasted energy — the paper's
// Table 1 metric.
func ExampleBattery_StepNet() {
	b, err := battery.New(battery.Config{
		CapacityMax: 17.28, // the paper's implied Cmax
		CapacityMin: 0.47,
		Initial:     15.0,
	})
	if err != nil {
		panic(err)
	}
	// One τ = 4.8 s slot: 2.36 W of sun against a 1.67 W load.
	delivered := b.StepNet(2.36, 1.67, 4.8)
	fmt.Printf("delivered %.2f J, charge %.2f J, wasted %.2f J\n",
		delivered, b.Charge(), b.Wasted())
	// A second identical slot overflows the battery.
	b.StepNet(2.36, 1.67, 4.8)
	fmt.Printf("after slot 2: charge %.2f J, wasted %.2f J\n", b.Charge(), b.Wasted())
	// Output:
	// delivered 8.02 J, charge 17.28 J, wasted 1.03 J
	// after slot 2: charge 17.28 J, wasted 4.34 J
}
