// Package battery models the rechargeable energy store at the heart
// of the paper's problem statement: a battery with a maximum charging
// capacity Cmax (energy arriving while full is wasted) and a minimum
// charge Cmin that must be maintained at all times (draining below it
// means computation stalls until recharge — the "undersupplied"
// condition).
//
// The model is an energy bucket integrated over simulation steps. It
// additionally keeps the two bookkeeping quantities the paper's
// Table 1 reports: total wasted energy and total undersupplied
// energy, plus the totals needed to compute energy utilization.
package battery

import (
	"fmt"
	"math"
)

// Config describes a battery.
type Config struct {
	// CapacityMax is Cmax, the maximum storable energy in joules.
	CapacityMax float64
	// CapacityMin is Cmin, the minimum charge (joules) that must be
	// maintained; discharge requests that would cross it are refused.
	CapacityMin float64
	// Initial is the starting charge in joules. It is clamped into
	// [CapacityMin, CapacityMax] by New.
	Initial float64
	// ChargeEfficiency scales incoming energy (0 < e <= 1). The
	// paper's model is lossless; the default 0 means 1.0.
	ChargeEfficiency float64
	// MaxChargeWatts caps the power the cell can absorb (its charge
	// C-rate); surplus beyond it is wasted. Zero means unlimited,
	// the paper's model. Applied by Step/StepNet, which know dt.
	MaxChargeWatts float64
	// MaxDischargeWatts caps the deliverable power; demand beyond it
	// is undersupplied even with charge available. Zero means
	// unlimited. Applied by Step/StepNet.
	MaxDischargeWatts float64
}

// Battery is a mutable energy store. It is not safe for concurrent
// use; the simulator steps it from a single goroutine.
type Battery struct {
	cfg    Config
	charge float64

	wasted       float64 // energy offered while full, lost (J)
	undersupply  float64 // energy requested but refused (J)
	totalIn      float64 // total energy offered by the source (J)
	totalOut     float64 // total energy actually delivered to loads (J)
	totalDemand  float64 // total energy requested by loads (J)
	totalCharged float64 // total energy actually stored (J)
}

// New creates a battery from cfg. It returns an error for physically
// meaningless configurations (Cmax <= 0, Cmin < 0, Cmin > Cmax, or an
// efficiency outside (0, 1]).
func New(cfg Config) (*Battery, error) {
	if cfg.CapacityMax <= 0 {
		return nil, fmt.Errorf("battery: CapacityMax %g must be positive", cfg.CapacityMax)
	}
	if cfg.CapacityMin < 0 {
		return nil, fmt.Errorf("battery: CapacityMin %g must be non-negative", cfg.CapacityMin)
	}
	if cfg.CapacityMin > cfg.CapacityMax {
		return nil, fmt.Errorf("battery: CapacityMin %g exceeds CapacityMax %g", cfg.CapacityMin, cfg.CapacityMax)
	}
	if cfg.ChargeEfficiency == 0 {
		cfg.ChargeEfficiency = 1
	}
	if cfg.ChargeEfficiency <= 0 || cfg.ChargeEfficiency > 1 {
		return nil, fmt.Errorf("battery: ChargeEfficiency %g outside (0, 1]", cfg.ChargeEfficiency)
	}
	if cfg.MaxChargeWatts < 0 || cfg.MaxDischargeWatts < 0 {
		return nil, fmt.Errorf("battery: negative rate limit (%g, %g)", cfg.MaxChargeWatts, cfg.MaxDischargeWatts)
	}
	b := &Battery{cfg: cfg}
	b.charge = math.Min(math.Max(cfg.Initial, cfg.CapacityMin), cfg.CapacityMax)
	return b, nil
}

// Charge returns the current stored energy in joules.
func (b *Battery) Charge() float64 { return b.charge }

// Headroom returns how much more energy can be stored before hitting
// Cmax.
func (b *Battery) Headroom() float64 { return b.cfg.CapacityMax - b.charge }

// Available returns the energy that can be drawn without violating
// Cmin.
func (b *Battery) Available() float64 { return b.charge - b.cfg.CapacityMin }

// Config returns the battery's configuration.
func (b *Battery) Config() Config { return b.cfg }

// Supply offers energy (joules) from the external source. Whatever
// does not fit below Cmax is recorded as wasted — the paper's
// oversupplied condition. It returns the energy actually stored.
// Negative offers panic: the source never absorbs energy.
func (b *Battery) Supply(energy float64) float64 {
	if energy < 0 {
		panic(fmt.Sprintf("battery: negative supply %g", energy))
	}
	b.totalIn += energy
	usable := energy * b.cfg.ChargeEfficiency
	stored := math.Min(usable, b.Headroom())
	b.charge += stored
	b.totalCharged += stored
	b.wasted += usable - stored
	return stored
}

// Draw requests energy (joules) for computation. If the full request
// cannot be satisfied without crossing Cmin, the battery delivers
// what it can and records the shortfall as undersupplied energy — the
// paper's second Table 1 metric. It returns the energy actually
// delivered. Negative requests panic.
func (b *Battery) Draw(energy float64) float64 {
	if energy < 0 {
		panic(fmt.Sprintf("battery: negative draw %g", energy))
	}
	b.totalDemand += energy
	delivered := math.Min(energy, b.Available())
	if delivered < 0 {
		delivered = 0
	}
	b.charge -= delivered
	b.totalOut += delivered
	b.undersupply += energy - delivered
	return delivered
}

// Step advances the battery by dt seconds with a constant external
// supply power and load power (both watts), performing the whole
// supply before the whole draw. This sequential ordering is only
// accurate when dt is small against the battery's capacity; slot-
// granular simulations should use StepNet instead. It returns the
// energy delivered to the load during the step.
func (b *Battery) Step(supplyPower, loadPower, dt float64) float64 {
	if dt < 0 {
		panic(fmt.Sprintf("battery: negative step %g", dt))
	}
	b.Supply(supplyPower * dt)
	return b.Draw(loadPower * dt)
}

// StepNet advances the battery by dt seconds with simultaneous
// constant supply and load, the physical regime of the paper's
// system: solar input feeds the load directly, and only the *net*
// flow charges or discharges the battery. Supply covering the load
// passes straight through; a surplus charges the battery (overflow
// beyond Cmax is wasted); a deficit discharges it (shortfall below
// Cmin is undersupplied). It returns the energy delivered to the
// load.
func (b *Battery) StepNet(supplyPower, loadPower, dt float64) float64 {
	if dt < 0 {
		panic(fmt.Sprintf("battery: negative step %g", dt))
	}
	if supplyPower < 0 || loadPower < 0 {
		panic(fmt.Sprintf("battery: negative power (%g, %g)", supplyPower, loadPower))
	}
	supplyE := supplyPower * dt
	loadE := loadPower * dt
	b.totalIn += supplyE
	b.totalDemand += loadE

	direct := math.Min(supplyE, loadE)
	surplus := supplyE - direct
	deficit := loadE - direct

	// Charge C-rate: the cell absorbs at most MaxChargeWatts.
	if b.cfg.MaxChargeWatts > 0 {
		cap := b.cfg.MaxChargeWatts * dt
		if surplus > cap {
			b.wasted += (surplus - cap) * b.cfg.ChargeEfficiency
			surplus = cap
		}
	}
	usable := surplus * b.cfg.ChargeEfficiency
	stored := math.Min(usable, b.Headroom())
	b.charge += stored
	b.totalCharged += stored
	b.wasted += usable - stored

	// Discharge C-rate: the cell delivers at most MaxDischargeWatts.
	deliverable := b.Available()
	if b.cfg.MaxDischargeWatts > 0 {
		deliverable = math.Min(deliverable, b.cfg.MaxDischargeWatts*dt)
	}
	fromBattery := math.Min(deficit, deliverable)
	if fromBattery < 0 {
		fromBattery = 0
	}
	b.charge -= fromBattery
	b.undersupply += deficit - fromBattery

	delivered := direct + fromBattery
	b.totalOut += delivered
	return delivered
}

// Wasted returns the cumulative energy lost to the full-battery
// (oversupplied) condition in joules.
func (b *Battery) Wasted() float64 { return b.wasted }

// Undersupplied returns the cumulative energy requested by loads but
// not deliverable without violating Cmin, in joules.
func (b *Battery) Undersupplied() float64 { return b.undersupply }

// TotalSupplied returns the cumulative energy offered by the external
// source in joules.
func (b *Battery) TotalSupplied() float64 { return b.totalIn }

// TotalDelivered returns the cumulative energy actually delivered to
// loads in joules.
func (b *Battery) TotalDelivered() float64 { return b.totalOut }

// TotalDemanded returns the cumulative energy requested by loads in
// joules.
func (b *Battery) TotalDemanded() float64 { return b.totalDemand }

// Utilization returns the paper's energy-utilization metric:
// (energy used for computation) / (energy available). Energy
// available is what the source offered plus the net change drawn from
// the initial charge. It returns 0 before any energy has moved.
func (b *Battery) Utilization() float64 {
	available := b.totalIn + math.Max(0, b.cfg.Initial-b.charge)
	if available == 0 {
		return 0
	}
	return b.totalOut / available
}

// Reset restores the initial charge and clears all accounting.
func (b *Battery) Reset() {
	b.charge = math.Min(math.Max(b.cfg.Initial, b.cfg.CapacityMin), b.cfg.CapacityMax)
	b.wasted = 0
	b.undersupply = 0
	b.totalIn = 0
	b.totalOut = 0
	b.totalDemand = 0
	b.totalCharged = 0
}

// Snapshot is an immutable copy of the battery's accounting, suitable
// for reports.
type Snapshot struct {
	Charge        float64
	Wasted        float64
	Undersupplied float64
	TotalSupplied float64
	TotalDrawn    float64
	Utilization   float64
}

// Snapshot captures the current state.
func (b *Battery) Snapshot() Snapshot {
	return Snapshot{
		Charge:        b.charge,
		Wasted:        b.wasted,
		Undersupplied: b.undersupply,
		TotalSupplied: b.totalIn,
		TotalDrawn:    b.totalOut,
		Utilization:   b.Utilization(),
	}
}

// String summarizes the battery state.
func (b *Battery) String() string {
	return fmt.Sprintf("Battery(charge=%.3g J in [%g, %g], wasted=%.3g J, undersupplied=%.3g J)",
		b.charge, b.cfg.CapacityMin, b.cfg.CapacityMax, b.wasted, b.undersupply)
}
