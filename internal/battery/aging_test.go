package battery

import (
	"math"
	"testing"
)

func agingBattery(t *testing.T, cfg AgingConfig) *Aging {
	t.Helper()
	b, err := New(Config{CapacityMax: 100, CapacityMin: 5, Initial: 50})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAging(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAgingValidation(t *testing.T) {
	b, err := New(Config{CapacityMax: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAging(nil, AgingConfig{}); err == nil {
		t.Error("nil battery must error")
	}
	bad := []AgingConfig{
		{SelfDischargePerSecond: -0.1},
		{SelfDischargePerSecond: 1},
		{FadePerJoule: -1},
		{CapacityFloor: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewAging(b, cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
}

func TestSelfDischarge(t *testing.T) {
	a := agingBattery(t, AgingConfig{SelfDischargePerSecond: 0.01})
	a.Age(10) // 10 s at 1%/s: charge → 50·e^{-0.1}
	want := 50 * math.Exp(-0.1)
	if math.Abs(a.Charge()-want) > 1e-9 {
		t.Errorf("charge = %g, want %g", a.Charge(), want)
	}
	if math.Abs(a.Leaked()-(50-want)) > 1e-9 {
		t.Errorf("leaked = %g", a.Leaked())
	}
}

func TestSelfDischargeStopsAtCmin(t *testing.T) {
	a := agingBattery(t, AgingConfig{SelfDischargePerSecond: 0.5})
	for i := 0; i < 100; i++ {
		a.Age(10)
	}
	if a.Charge() < 5-1e-9 {
		t.Errorf("leak crossed Cmin: %g", a.Charge())
	}
}

func TestCapacityFade(t *testing.T) {
	a := agingBattery(t, AgingConfig{FadePerJoule: 1e-3})
	// Push 100 J of throughput: fade = 1e-3·100·Cmax = 10 J.
	for i := 0; i < 10; i++ {
		a.Supply(10)
		a.Draw(10)
	}
	a.Age(0)
	if got := a.EffectiveCapacity(); math.Abs(got-90) > 1e-6 {
		t.Errorf("faded capacity = %g, want 90", got)
	}
	if math.Abs(a.Faded()-10) > 1e-6 {
		t.Errorf("Faded = %g", a.Faded())
	}
}

func TestCapacityFadeFloor(t *testing.T) {
	a := agingBattery(t, AgingConfig{FadePerJoule: 1, CapacityFloor: 0.6})
	a.Supply(50)
	a.Draw(50)
	a.Age(0)
	if got := a.EffectiveCapacity(); got != 60 {
		t.Errorf("capacity = %g, want floor 60", got)
	}
}

func TestFadeClampsStoredCharge(t *testing.T) {
	b, err := New(Config{CapacityMax: 100, CapacityMin: 0, Initial: 100})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAging(b, AgingConfig{FadePerJoule: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	a.Draw(30)
	a.Supply(30) // back to full 100 J
	a.Age(0)     // fade by 1e-3·30·100 = 3 J → Cmax 97
	if a.Charge() > a.EffectiveCapacity()+1e-9 {
		t.Errorf("charge %g above faded capacity %g", a.Charge(), a.EffectiveCapacity())
	}
}

func TestAgeNegativePanics(t *testing.T) {
	a := agingBattery(t, AgingConfig{})
	defer func() {
		if recover() == nil {
			t.Error("negative dt must panic")
		}
	}()
	a.Age(-1)
}

func TestZeroAgingIsIdentity(t *testing.T) {
	a := agingBattery(t, AgingConfig{})
	before := a.Charge()
	a.Age(1e6)
	if a.Charge() != before || a.Leaked() != 0 || a.Faded() != 0 {
		t.Error("zero config must not change anything")
	}
}
