package battery

import (
	"fmt"
	"math"
)

// This file extends the ideal paper battery with the two dominant
// non-idealities of real rechargeable cells on long missions:
// self-discharge (a slow exponential leak) and cycle aging (capacity
// fade proportional to energy throughput). The endurance experiment
// in internal/experiments uses them to test the manager over many
// periods; the paper's two-period evaluation treats the battery as
// ideal, so both default to off.

// AgingConfig parameterizes the non-idealities.
type AgingConfig struct {
	// SelfDischargePerSecond is the fractional charge lost per
	// second (e.g. 5% per month ≈ 1.9e-8). Zero disables the leak.
	SelfDischargePerSecond float64
	// FadePerJoule is the fraction of CapacityMax lost per joule of
	// discharge throughput. Zero disables fading.
	FadePerJoule float64
	// CapacityFloor stops fading once Cmax has shrunk to this
	// fraction of its original value (cells are considered dead at
	// ~80%; default 0.5).
	CapacityFloor float64
}

func (c AgingConfig) validate() error {
	if c.SelfDischargePerSecond < 0 || c.SelfDischargePerSecond >= 1 {
		return fmt.Errorf("battery: self-discharge rate %g outside [0, 1)", c.SelfDischargePerSecond)
	}
	if c.FadePerJoule < 0 {
		return fmt.Errorf("battery: negative fade rate %g", c.FadePerJoule)
	}
	if c.CapacityFloor < 0 || c.CapacityFloor > 1 {
		return fmt.Errorf("battery: capacity floor %g outside [0, 1]", c.CapacityFloor)
	}
	return nil
}

// Aging wraps a Battery with self-discharge and capacity fade. Use
// Age between simulation steps.
type Aging struct {
	*Battery
	cfg          AgingConfig
	originalCmax float64
	leaked       float64
	faded        float64
}

// NewAging wraps the battery. The battery must have been created
// with New; the wrapper mutates its configuration as capacity fades.
func NewAging(b *Battery, cfg AgingConfig) (*Aging, error) {
	if b == nil {
		return nil, fmt.Errorf("battery: nil battery")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.CapacityFloor == 0 {
		cfg.CapacityFloor = 0.5
	}
	return &Aging{Battery: b, cfg: cfg, originalCmax: b.cfg.CapacityMax}, nil
}

// Age applies dt seconds of self-discharge and the capacity fade for
// the discharge throughput since the last call. Call it once per
// simulation step, after the step's supply/draw.
func (a *Aging) Age(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("battery: negative aging step %g", dt))
	}
	// Self-discharge: exponential decay of the stored charge, never
	// below Cmin (the protection circuit disconnects the leak path in
	// deep discharge).
	if a.cfg.SelfDischargePerSecond > 0 && dt > 0 {
		factor := math.Exp(-a.cfg.SelfDischargePerSecond * dt)
		loss := a.charge * (1 - factor)
		available := a.charge - a.cfg2().CapacityMin
		if loss > available {
			loss = math.Max(available, 0)
		}
		a.charge -= loss
		a.leaked += loss
	}
	// Capacity fade: shrink Cmax in proportion to new throughput.
	if a.cfg.FadePerJoule > 0 {
		fade := a.cfg.FadePerJoule * a.totalOut * a.originalCmax
		floor := a.cfg.CapacityFloor * a.originalCmax
		newCmax := math.Max(a.originalCmax-fade, floor)
		if newCmax < a.Battery.cfg.CapacityMax {
			a.faded = a.originalCmax - newCmax
			a.Battery.cfg.CapacityMax = newCmax
			if a.charge > newCmax {
				// Charge above the shrunken ceiling is lost.
				a.wasted += a.charge - newCmax
				a.charge = newCmax
			}
		}
	}
}

// cfg2 exposes the inner config without copying the whole battery.
func (a *Aging) cfg2() Config { return a.Battery.cfg }

// Leaked returns the total self-discharge loss in joules.
func (a *Aging) Leaked() float64 { return a.leaked }

// Faded returns the total capacity lost to aging in joules.
func (a *Aging) Faded() float64 { return a.faded }

// EffectiveCapacity returns the current (possibly faded) Cmax.
func (a *Aging) EffectiveCapacity() float64 { return a.Battery.cfg.CapacityMax }
