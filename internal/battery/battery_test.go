package battery

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Battery {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{CapacityMax: 0},
		{CapacityMax: -5},
		{CapacityMax: 10, CapacityMin: -1},
		{CapacityMax: 10, CapacityMin: 20},
		{CapacityMax: 10, ChargeEfficiency: -0.5},
		{CapacityMax: 10, ChargeEfficiency: 1.5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
}

func TestInitialClamped(t *testing.T) {
	b := mustNew(t, Config{CapacityMax: 10, CapacityMin: 2, Initial: 100})
	if b.Charge() != 10 {
		t.Errorf("initial charge clamped to Cmax: got %g", b.Charge())
	}
	b = mustNew(t, Config{CapacityMax: 10, CapacityMin: 2, Initial: 0})
	if b.Charge() != 2 {
		t.Errorf("initial charge clamped to Cmin: got %g", b.Charge())
	}
}

func TestSupplyStoresAndWastes(t *testing.T) {
	b := mustNew(t, Config{CapacityMax: 10, Initial: 8})
	stored := b.Supply(5)
	if stored != 2 {
		t.Errorf("stored = %g, want 2 (headroom)", stored)
	}
	if b.Wasted() != 3 {
		t.Errorf("wasted = %g, want 3", b.Wasted())
	}
	if b.Charge() != 10 {
		t.Errorf("charge = %g, want 10", b.Charge())
	}
}

func TestDrawDeliversAndRecordsShortfall(t *testing.T) {
	b := mustNew(t, Config{CapacityMax: 10, CapacityMin: 2, Initial: 5})
	got := b.Draw(10)
	if got != 3 {
		t.Errorf("delivered = %g, want 3 (charge above Cmin)", got)
	}
	if b.Undersupplied() != 7 {
		t.Errorf("undersupplied = %g, want 7", b.Undersupplied())
	}
	if b.Charge() != 2 {
		t.Errorf("charge = %g, want Cmin=2", b.Charge())
	}
	// Further draws deliver nothing but keep accounting.
	if got := b.Draw(1); got != 0 {
		t.Errorf("draw at Cmin delivered %g", got)
	}
	if b.Undersupplied() != 8 {
		t.Errorf("undersupplied = %g, want 8", b.Undersupplied())
	}
}

func TestNegativeSupplyPanics(t *testing.T) {
	b := mustNew(t, Config{CapacityMax: 10})
	defer func() {
		if recover() == nil {
			t.Error("negative supply must panic")
		}
	}()
	b.Supply(-1)
}

func TestNegativeDrawPanics(t *testing.T) {
	b := mustNew(t, Config{CapacityMax: 10})
	defer func() {
		if recover() == nil {
			t.Error("negative draw must panic")
		}
	}()
	b.Draw(-1)
}

func TestStepSupplyBeforeDraw(t *testing.T) {
	// Empty battery at Cmin: a step with equal supply and load should
	// deliver the full load because supply lands first.
	b := mustNew(t, Config{CapacityMax: 10, CapacityMin: 0, Initial: 0})
	delivered := b.Step(2.0, 2.0, 4.8)
	if !approx(delivered, 9.6, 1e-12) {
		t.Errorf("delivered = %g, want 9.6", delivered)
	}
	if b.Undersupplied() != 0 {
		t.Errorf("undersupplied = %g, want 0", b.Undersupplied())
	}
}

func TestStepNegativeDtPanics(t *testing.T) {
	b := mustNew(t, Config{CapacityMax: 10})
	defer func() {
		if recover() == nil {
			t.Error("negative dt must panic")
		}
	}()
	b.Step(1, 1, -0.1)
}

func TestChargeEfficiency(t *testing.T) {
	b := mustNew(t, Config{CapacityMax: 100, ChargeEfficiency: 0.5})
	stored := b.Supply(10)
	if stored != 5 {
		t.Errorf("stored = %g with 50%% efficiency, want 5", stored)
	}
}

func TestUtilization(t *testing.T) {
	b := mustNew(t, Config{CapacityMax: 100, Initial: 0})
	if b.Utilization() != 0 {
		t.Error("utilization must be 0 before activity")
	}
	b.Supply(50)
	b.Draw(25)
	if u := b.Utilization(); !approx(u, 0.5, 1e-12) {
		t.Errorf("utilization = %g, want 0.5", u)
	}
}

func TestReset(t *testing.T) {
	b := mustNew(t, Config{CapacityMax: 10, Initial: 5})
	b.Supply(100)
	b.Draw(100)
	b.Reset()
	if b.Charge() != 5 || b.Wasted() != 0 || b.Undersupplied() != 0 ||
		b.TotalSupplied() != 0 || b.TotalDelivered() != 0 || b.TotalDemanded() != 0 {
		t.Errorf("Reset left state behind: %v", b)
	}
}

func TestSnapshot(t *testing.T) {
	b := mustNew(t, Config{CapacityMax: 10, Initial: 10})
	b.Supply(3) // all wasted
	b.Draw(4)
	s := b.Snapshot()
	if s.Wasted != 3 || s.TotalDrawn != 4 || s.Charge != 6 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestString(t *testing.T) {
	b := mustNew(t, Config{CapacityMax: 10, CapacityMin: 1, Initial: 5})
	if s := b.String(); !strings.Contains(s, "Battery(") {
		t.Errorf("String = %q", s)
	}
}

// Invariant: charge always stays within [Cmin, Cmax] under any
// sequence of supply/draw operations.
func TestChargeBoundsInvariant(t *testing.T) {
	f := func(ops []float64) bool {
		b, err := New(Config{CapacityMax: 50, CapacityMin: 5, Initial: 20})
		if err != nil {
			return false
		}
		for _, op := range ops {
			if math.IsNaN(op) || math.IsInf(op, 0) {
				continue
			}
			amt := math.Mod(math.Abs(op), 100)
			if op >= 0 {
				b.Supply(amt)
			} else {
				b.Draw(amt)
			}
			if b.Charge() < 5-1e-9 || b.Charge() > 50+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Invariant: energy conservation. TotalIn·eff = charged + wasted, and
// charge = initial + charged - drawn.
func TestEnergyConservationInvariant(t *testing.T) {
	f := func(ops []float64) bool {
		const initial = 20.0
		b, err := New(Config{CapacityMax: 50, CapacityMin: 0, Initial: initial})
		if err != nil {
			return false
		}
		for _, op := range ops {
			if math.IsNaN(op) || math.IsInf(op, 0) {
				continue
			}
			amt := math.Mod(math.Abs(op), 100)
			if op >= 0 {
				b.Supply(amt)
			} else {
				b.Draw(amt)
			}
		}
		lhs := initial + b.TotalSupplied() - b.Wasted() - b.TotalDelivered()
		return approx(lhs, b.Charge(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestConfigAccessor(t *testing.T) {
	cfg := Config{CapacityMax: 10, CapacityMin: 1, Initial: 5}
	b := mustNew(t, cfg)
	got := b.Config()
	if got.CapacityMax != 10 || got.CapacityMin != 1 {
		t.Errorf("Config = %+v", got)
	}
	// Default efficiency is normalized to 1.
	if got.ChargeEfficiency != 1 {
		t.Errorf("normalized efficiency = %g", got.ChargeEfficiency)
	}
}

func TestStepNetPassthrough(t *testing.T) {
	// Supply covers the load: everything passes through, the battery
	// does not move, nothing is wasted or undersupplied.
	b := mustNew(t, Config{CapacityMax: 10, CapacityMin: 1, Initial: 5})
	delivered := b.StepNet(2, 2, 4.8)
	if !approx(delivered, 9.6, 1e-12) {
		t.Errorf("delivered = %g", delivered)
	}
	if b.Charge() != 5 || b.Wasted() != 0 || b.Undersupplied() != 0 {
		t.Errorf("passthrough moved the battery: %v", b)
	}
}

func TestStepNetSurplusChargesThenWastes(t *testing.T) {
	b := mustNew(t, Config{CapacityMax: 10, CapacityMin: 0, Initial: 9})
	// Surplus 1 W for 4 s = 4 J, headroom 1 J → 3 J wasted.
	b.StepNet(2, 1, 4)
	if !approx(b.Charge(), 10, 1e-12) {
		t.Errorf("charge = %g", b.Charge())
	}
	if !approx(b.Wasted(), 3, 1e-12) {
		t.Errorf("wasted = %g", b.Wasted())
	}
}

func TestStepNetDeficitDrainsThenUndersupplies(t *testing.T) {
	b := mustNew(t, Config{CapacityMax: 10, CapacityMin: 1, Initial: 3})
	// Deficit 2 W for 4 s = 8 J, available 2 J → 6 J undersupplied.
	delivered := b.StepNet(1, 3, 4)
	if !approx(b.Charge(), 1, 1e-12) {
		t.Errorf("charge = %g", b.Charge())
	}
	if !approx(b.Undersupplied(), 6, 1e-12) {
		t.Errorf("undersupplied = %g", b.Undersupplied())
	}
	// Delivered = direct passthrough (4 J) + battery (2 J).
	if !approx(delivered, 6, 1e-12) {
		t.Errorf("delivered = %g", delivered)
	}
}

func TestStepNetEfficiencyAppliesToSurplusOnly(t *testing.T) {
	b := mustNew(t, Config{CapacityMax: 100, ChargeEfficiency: 0.5, Initial: 0})
	// 4 J surplus at 50% efficiency stores 2 J; passthrough is free.
	delivered := b.StepNet(2, 1, 4)
	if !approx(delivered, 4, 1e-12) {
		t.Errorf("delivered = %g", delivered)
	}
	if !approx(b.Charge(), 2, 1e-12) {
		t.Errorf("charge = %g", b.Charge())
	}
}

func TestStepNetPanics(t *testing.T) {
	b := mustNew(t, Config{CapacityMax: 10})
	for name, fn := range map[string]func(){
		"negative dt":     func() { b.StepNet(1, 1, -1) },
		"negative supply": func() { b.StepNet(-1, 1, 1) },
		"negative load":   func() { b.StepNet(1, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStepNetConservationInvariant(t *testing.T) {
	f := func(ops []float64) bool {
		const initial = 20.0
		b, err := New(Config{CapacityMax: 50, CapacityMin: 2, Initial: initial})
		if err != nil {
			return false
		}
		for i := 0; i+1 < len(ops); i += 2 {
			s, l := ops[i], ops[i+1]
			if math.IsNaN(s) || math.IsNaN(l) || math.IsInf(s, 0) || math.IsInf(l, 0) {
				continue
			}
			b.StepNet(math.Mod(math.Abs(s), 10), math.Mod(math.Abs(l), 10), 1)
		}
		lhs := initial + b.TotalSupplied() - b.Wasted() - b.TotalDelivered()
		return approx(lhs, b.Charge(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRateLimitValidation(t *testing.T) {
	if _, err := New(Config{CapacityMax: 10, MaxChargeWatts: -1}); err == nil {
		t.Error("negative charge rate must be rejected")
	}
	if _, err := New(Config{CapacityMax: 10, MaxDischargeWatts: -1}); err == nil {
		t.Error("negative discharge rate must be rejected")
	}
}

func TestStepNetChargeRateLimit(t *testing.T) {
	// 2 W surplus against a 0.5 W charge limit for 4 s: 2 J stored,
	// 6 J wasted, regardless of headroom.
	b := mustNew(t, Config{CapacityMax: 100, MaxChargeWatts: 0.5, Initial: 0})
	b.StepNet(3, 1, 4)
	if !approx(b.Charge(), 2, 1e-12) {
		t.Errorf("charge = %g, want 2", b.Charge())
	}
	if !approx(b.Wasted(), 6, 1e-12) {
		t.Errorf("wasted = %g, want 6", b.Wasted())
	}
}

func TestStepNetDischargeRateLimit(t *testing.T) {
	// 3 W deficit against a 1 W discharge limit for 4 s: 4 J from the
	// battery, 8 J undersupplied, charge untouched beyond the 4 J.
	b := mustNew(t, Config{CapacityMax: 100, MaxDischargeWatts: 1, Initial: 50})
	delivered := b.StepNet(1, 4, 4)
	if !approx(b.Charge(), 46, 1e-12) {
		t.Errorf("charge = %g, want 46", b.Charge())
	}
	if !approx(b.Undersupplied(), 8, 1e-12) {
		t.Errorf("undersupplied = %g, want 8", b.Undersupplied())
	}
	// Delivered = 4 J passthrough + 4 J battery.
	if !approx(delivered, 8, 1e-12) {
		t.Errorf("delivered = %g, want 8", delivered)
	}
}

func TestRateLimitConservation(t *testing.T) {
	f := func(ops []float64) bool {
		const initial = 20.0
		b, err := New(Config{
			CapacityMax: 50, CapacityMin: 2, Initial: initial,
			MaxChargeWatts: 3, MaxDischargeWatts: 2,
		})
		if err != nil {
			return false
		}
		for i := 0; i+1 < len(ops); i += 2 {
			s, l := ops[i], ops[i+1]
			if math.IsNaN(s) || math.IsNaN(l) || math.IsInf(s, 0) || math.IsInf(l, 0) {
				continue
			}
			b.StepNet(math.Mod(math.Abs(s), 10), math.Mod(math.Abs(l), 10), 1)
		}
		lhs := initial + b.TotalSupplied() - b.Wasted() - b.TotalDelivered()
		return approx(lhs, b.Charge(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
