package chaostest

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// Goroutine-leak checking ------------------------------------------
//
// SnapshotGoroutines records the ids of every live goroutine;
// CheckGoroutines later re-dumps the stacks and fails the test if
// goroutines born since the snapshot are still alive after a grace
// period. The checker is stdlib-only: it parses runtime.Stack's
// "goroutine N [state]:" headers. Transient goroutines (an HTTP
// keep-alive connection draining, a timer firing) get up to
// leakGrace of settle time before they count as leaks.

// leakGrace is how long CheckGoroutines polls before declaring a
// leak.
const leakGrace = 3 * time.Second

// goroutineDump captures every goroutine's stack.
func goroutineDump() []byte {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return buf[:n]
		}
		buf = make([]byte, len(buf)*2)
	}
}

// parseGoroutines splits a dump into per-goroutine stacks keyed by
// goroutine id.
func parseGoroutines(dump []byte) map[int]string {
	out := make(map[int]string)
	for _, g := range strings.Split(string(dump), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(g, "goroutine %d ", &id); err != nil {
			continue
		}
		out[id] = g
	}
	return out
}

// ignorable reports stacks the checker never counts as leaks: the
// runtime's own workers and the testing harness.
func ignorable(stack string) bool {
	for _, marker := range []string{
		"runtime.gc",
		"runtime.forcegchelper",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"runtime/trace",
		"testing.(*T).Run",
		"testing.runTests",
		"testing.(*M).",
		"os/signal.",
		"chaostest.goroutineDump",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}

// SnapshotGoroutines records the currently live goroutine ids. Take
// it before starting the servers, clients and workers under test.
func SnapshotGoroutines() map[int]bool {
	ids := make(map[int]bool)
	for id := range parseGoroutines(goroutineDump()) {
		ids[id] = true
	}
	return ids
}

// CheckGoroutines fails t if goroutines created since the snapshot
// are still running after everything under test was shut down. It
// polls for up to leakGrace so connections mid-teardown can finish
// dying before they are judged.
func CheckGoroutines(t testing.TB, before map[int]bool) {
	t.Helper()
	deadline := time.Now().Add(leakGrace)
	var leaked []string
	for {
		leaked = leaked[:0]
		for id, stack := range parseGoroutines(goroutineDump()) {
			if before[id] || ignorable(stack) {
				continue
			}
			leaked = append(leaked, stack)
		}
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	sort.Strings(leaked)
	t.Errorf("%d goroutine(s) leaked after drain:\n\n%s",
		len(leaked), strings.Join(leaked, "\n\n"))
}
