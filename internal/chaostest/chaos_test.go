package chaostest

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// okHandler answers 200 with a small JSON body.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ok":true}`) //nolint:errcheck
	})
}

func TestTransportNoFaultsPassesThrough(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()
	c := &http.Client{Transport: NewTransport(nil, FaultConfig{Seed: 1})}
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || string(body) != `{"ok":true}` {
		t.Fatalf("body %q err %v", body, err)
	}
}

// TestTransportInjectsEachFaultKind drives enough requests through an
// all-faults transport that every kind fires, and checks each
// surfaces in the documented shape.
func TestTransportInjectsEachFaultKind(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()
	tr := NewTransport(nil, FaultConfig{
		Seed:         7,
		LatencyProb:  0.2,
		LatencyMin:   time.Microsecond,
		LatencyMax:   time.Millisecond,
		ResetProb:    0.2,
		TruncateProb: 0.2,
		Err500Prob:   0.1,
		Err503Prob:   0.1,
	})
	c := &http.Client{Transport: tr}
	var resets, truncations, err500s, err503s, oks int
	for i := 0; i < 300; i++ {
		resp, err := c.Get(srv.URL)
		if err != nil {
			var re *ResetError
			if !errors.As(err, &re) {
				t.Fatalf("unexpected transport error: %v", err)
			}
			resets++
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			if rerr != nil {
				if !errors.Is(rerr, io.ErrUnexpectedEOF) {
					t.Fatalf("truncated read error %v, want unexpected EOF", rerr)
				}
				truncations++
				continue
			}
			if string(body) != `{"ok":true}` {
				t.Fatalf("clean 200 with corrupted body %q", body)
			}
			oks++
		case http.StatusInternalServerError:
			err500s++
			if !strings.Contains(string(body), `"status":500`) {
				t.Fatalf("synthetic 500 body %q", body)
			}
		case http.StatusServiceUnavailable:
			err503s++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("synthetic 503 missing Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if resets == 0 || truncations == 0 || err500s == 0 || err503s == 0 || oks == 0 {
		t.Fatalf("fault mix incomplete: resets=%d truncations=%d 500s=%d 503s=%d oks=%d",
			resets, truncations, err500s, err503s, oks)
	}
	st := tr.Stats()
	if st.Requests != 300 {
		t.Fatalf("stats requests %d, want 300", st.Requests)
	}
	if st.Resets == 0 || st.Truncations == 0 || st.Err500s == 0 || st.Err503s == 0 || st.Latency == 0 {
		t.Fatalf("stats missing injected kinds: %+v", st)
	}
}

// TestTransportDeterministicBySeed replays the same request sequence
// through two equally-seeded transports and expects identical fault
// counts.
func TestTransportDeterministicBySeed(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()
	run := func() Stats {
		tr := NewTransport(nil, FaultConfig{
			Seed: 42, ResetProb: 0.25, TruncateProb: 0.25, Err503Prob: 0.25,
		})
		c := &http.Client{Transport: tr}
		for i := 0; i < 100; i++ {
			resp, err := c.Get(srv.URL)
			if err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}
		return tr.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("equal seeds diverged:\n%+v\n%+v", a, b)
	}
}

func TestMiddlewareInjects503AndAbort(t *testing.T) {
	mh := Middleware(okHandler(), FaultConfig{Seed: 3, Err503Prob: 0.3, ResetProb: 0.3})
	srv := httptest.NewServer(mh)
	defer srv.Close()
	var aborts, err503s, oks int
	for i := 0; i < 200; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			aborts++
			continue
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			oks++
		case http.StatusServiceUnavailable:
			err503s++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("injected 503 missing Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if aborts == 0 || err503s == 0 || oks == 0 {
		t.Fatalf("middleware mix incomplete: aborts=%d 503s=%d oks=%d", aborts, err503s, oks)
	}
	st := mh.Stats()
	if st.Resets == 0 || st.Err503s == 0 {
		t.Fatalf("stats missing injections: %+v", st)
	}
}

// TestLeakCheckerDetectsLeak pins a goroutine past the snapshot and
// confirms the checker flags it (on a throwaway testing.T), then
// releases it and confirms a clean pass.
func TestLeakCheckerDetectsLeak(t *testing.T) {
	snap := SnapshotGoroutines()
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started

	probe := &recordingT{TB: t}
	CheckGoroutines(probe, snap)
	if !probe.failed {
		t.Fatal("checker missed a blocked goroutine")
	}
	close(block)
	CheckGoroutines(t, snap) // must settle clean within the grace window
}

// recordingT captures Errorf instead of failing the real test.
type recordingT struct {
	testing.TB
	failed bool
}

func (r *recordingT) Errorf(string, ...any) { r.failed = true }
func (r *recordingT) Helper()               {}
