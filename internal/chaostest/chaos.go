// Package chaostest injects deterministic transport and handler
// faults for resilience testing. It is the network-side sibling of
// internal/faults: where faults corrupts the simulated PAMA board
// (dead PIMs, SEUs, lost ring commands), chaostest corrupts the wire
// between a fleet node and dpmd — injected latency, connection
// resets, truncated bodies and spurious 5xx — everything a client's
// retry loop and the server's admission control must absorb. Every
// fault draw comes from one seeded source, so a failing soak run
// replays exactly from its seed.
//
// Two injection points cover both directions:
//
//   - Transport wraps an http.RoundTripper, faulting requests before
//     they are sent (reset), after they complete (reset, truncation)
//     or replacing the response outright (spurious 500/503).
//   - Middleware wraps an http.Handler, delaying requests inside the
//     server and aborting or replacing responses — the faults a
//     proxy or a dying peer would inflict.
//
// The package also carries a stdlib-only goroutine-leak checker
// (SnapshotGoroutines / CheckGoroutines) used by the shutdown and
// breaker tests.
package chaostest

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig sets per-request fault probabilities (each in [0, 1])
// and the injected-latency band. Probabilities are evaluated
// independently in a fixed order, so one request can suffer latency
// and a reset.
type FaultConfig struct {
	// Seed drives every draw; runs with equal seeds inject equal
	// fault sequences (per injector — concurrent callers interleave
	// draws, but the multiset of faults stays seed-determined).
	Seed int64
	// LatencyProb injects a uniform delay in [LatencyMin, LatencyMax].
	LatencyProb float64
	// LatencyMin and LatencyMax bound the injected delay.
	LatencyMin, LatencyMax time.Duration
	// ResetProb drops the connection: the transport returns a
	// transport error (half before sending, half after the server has
	// processed the request — both shapes a real reset takes); the
	// middleware aborts the response mid-write.
	ResetProb float64
	// TruncateProb cuts the response body short after the first byte,
	// surfacing as an unexpected-EOF read error on the client.
	TruncateProb float64
	// Err500Prob and Err503Prob replace the response with a synthetic
	// 500 or 503 before the request reaches the server. The 503
	// carries a Retry-After of 1 s, as dpmd's own overload responses
	// do.
	Err500Prob, Err503Prob float64
}

// Stats counts injected faults by kind.
type Stats struct {
	// Requests counts round trips (or handler invocations) seen.
	Requests uint64
	// Latency, Resets, Truncations, Err500s and Err503s count the
	// faults injected.
	Latency, Resets, Truncations, Err500s, Err503s uint64
}

// injector is the shared seeded draw state.
type injector struct {
	cfg FaultConfig

	mu  sync.Mutex
	rng *rand.Rand

	requests, latency, resets, truncations, err500s, err503s atomic.Uint64
}

func newInjector(cfg FaultConfig) *injector {
	return &injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// draw evaluates one probability.
func (in *injector) draw(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	v := in.rng.Float64()
	in.mu.Unlock()
	return v < p
}

// delay draws an injected latency in the configured band.
func (in *injector) delay() time.Duration {
	min, max := in.cfg.LatencyMin, in.cfg.LatencyMax
	if max <= min {
		return min
	}
	in.mu.Lock()
	d := min + time.Duration(in.rng.Int63n(int64(max-min)+1))
	in.mu.Unlock()
	return d
}

func (in *injector) stats() Stats {
	return Stats{
		Requests:    in.requests.Load(),
		Latency:     in.latency.Load(),
		Resets:      in.resets.Load(),
		Truncations: in.truncations.Load(),
		Err500s:     in.err500s.Load(),
		Err503s:     in.err503s.Load(),
	}
}

// sleepCtx sleeps d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// ResetError is the transport error an injected connection reset
// surfaces as.
type ResetError struct {
	// Sent reports whether the request had already reached the server
	// when the connection died — the case retries must be idempotent
	// for.
	Sent bool
}

func (e *ResetError) Error() string {
	if e.Sent {
		return "chaos: connection reset after request was sent"
	}
	return "chaos: connection reset before request was sent"
}

// Transport is a fault-injecting http.RoundTripper.
type Transport struct {
	base http.RoundTripper
	in   *injector
}

// NewTransport wraps base (http.DefaultTransport when nil) with the
// configured faults.
func NewTransport(base http.RoundTripper, cfg FaultConfig) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, in: newInjector(cfg)}
}

// Stats snapshots the injected-fault counters.
func (t *Transport) Stats() Stats { return t.in.stats() }

// RoundTrip applies the fault plan around one request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := t.in
	in.requests.Add(1)
	ctx := req.Context()
	if in.draw(in.cfg.LatencyProb) {
		in.latency.Add(1)
		sleepCtx(ctx, in.delay())
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if in.draw(in.cfg.Err500Prob) {
		in.err500s.Add(1)
		closeBody(req)
		return syntheticResponse(req, http.StatusInternalServerError, ""), nil
	}
	if in.draw(in.cfg.Err503Prob) {
		in.err503s.Add(1)
		closeBody(req)
		return syntheticResponse(req, http.StatusServiceUnavailable, "1"), nil
	}
	if in.draw(in.cfg.ResetProb) {
		in.resets.Add(1)
		// Half the resets kill the connection before the request is
		// sent; the other half let the server do the work first, so
		// retries genuinely re-execute completed requests.
		if in.draw(0.5) {
			closeBody(req)
			return nil, &ResetError{Sent: false}
		}
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body.Close() //nolint:errcheck
		return nil, &ResetError{Sent: true}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if in.draw(in.cfg.TruncateProb) {
		in.truncations.Add(1)
		resp.Body = &truncatedBody{rc: resp.Body}
		// The advertised length no longer matches what the body will
		// deliver — exactly what a mid-stream cut looks like.
	}
	return resp, nil
}

// closeBody releases a request body the transport will never send.
func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close() //nolint:errcheck
	}
}

// syntheticResponse builds a spurious error response that never
// reached the server, in dpmd's structured-error shape.
func syntheticResponse(req *http.Request, status int, retryAfter string) *http.Response {
	body := fmt.Sprintf("{\"error\":\"chaos: injected %d\",\"status\":%d}\n", status, status)
	h := http.Header{"Content-Type": []string{"application/json"}}
	if retryAfter != "" {
		h.Set("Retry-After", retryAfter)
	}
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncatedBody delivers one byte of the real body, then fails the
// read the way a cut connection does.
type truncatedBody struct {
	rc   io.ReadCloser
	done bool
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.done {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > 1 {
		p = p[:1]
	}
	n, err := b.rc.Read(p)
	b.done = true
	if err != nil && err != io.EOF {
		return n, err
	}
	return n, io.ErrUnexpectedEOF
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// Middleware wraps next with server-side fault injection: injected
// latency before the handler runs, spurious 503s (with Retry-After,
// as dpmd's real overload responses carry), and aborted responses —
// the handler's output is cut off mid-connection, which clients see
// as a reset. Stats() on the returned *MiddlewareHandler counts the
// injections.
func Middleware(next http.Handler, cfg FaultConfig) *MiddlewareHandler {
	return &MiddlewareHandler{next: next, in: newInjector(cfg)}
}

// MiddlewareHandler is the fault-injecting http.Handler Middleware
// returns.
type MiddlewareHandler struct {
	next http.Handler
	in   *injector
}

// Stats snapshots the injected-fault counters.
func (m *MiddlewareHandler) Stats() Stats { return m.in.stats() }

// ServeHTTP applies the fault plan around one request.
func (m *MiddlewareHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	in := m.in
	in.requests.Add(1)
	if in.draw(in.cfg.LatencyProb) {
		in.latency.Add(1)
		sleepCtx(r.Context(), in.delay())
	}
	if in.draw(in.cfg.Err503Prob) {
		in.err503s.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "{\"error\":\"chaos: injected 503\",\"status\":503}\n") //nolint:errcheck
		return
	}
	if in.draw(in.cfg.ResetProb) {
		in.resets.Add(1)
		// http.ErrAbortHandler kills the connection without a
		// response — the server-side face of a reset.
		panic(http.ErrAbortHandler)
	}
	m.next.ServeHTTP(w, r)
}
