package chaostest_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dpm/internal/chaostest"
	"dpm/internal/resilience"
	"dpm/internal/server"
	"dpm/internal/server/client"
	"dpm/internal/trace"
)

// TestChaosSoak is the overload drill: a live dpmd instance behind
// fault-injecting server middleware, driven by retrying clients whose
// transports inject their own faults, with concurrent plan, batch,
// replan and fleet-session traffic. The stateless endpoints are
// idempotent; fleet ticks carry Seq so retried ticks are answered
// from session memory rather than double-applied. With unlimited
// (context-bounded) attempts each logical request must eventually
// succeed; /v1/plan answers must stay byte-identical to a golden body
// captured before the storm; a post-storm fleet drain must return
// each surviving session exactly once; and after a graceful drain
// nothing may leak. Both injectors are seeded, so a failure replays
// exactly.
func TestChaosSoak(t *testing.T) {
	snap := chaostest.SnapshotGoroutines()

	workers, iters := 8, 40
	if testing.Short() {
		workers, iters = 4, 10
	}

	srv, err := server.New(server.Config{
		Addr:           "127.0.0.1:0",
		PoolSize:       4,
		RequestTimeout: 10 * time.Second,
		Wrap: func(next http.Handler) http.Handler {
			return chaostest.Middleware(next, chaostest.FaultConfig{
				Seed:        101,
				LatencyProb: 0.10,
				LatencyMin:  time.Millisecond,
				LatencyMax:  5 * time.Millisecond,
				Err503Prob:  0.08,
				ResetProb:   0.05,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	// Golden /v1/plan bytes over a clean connection, before any chaos
	// traffic touches the cache.
	golden := rawPlan(t, base)

	policy := resilience.RetryPolicy{
		MaxAttempts:      resilience.UnlimitedAttempts,
		BaseDelay:        2 * time.Millisecond,
		MaxDelay:         50 * time.Millisecond,
		BreakerThreshold: 20,
		BreakerCooldown:  20 * time.Millisecond,
		Seed:             7,
	}
	chaosHTTP := &http.Client{
		Timeout: 30 * time.Second,
		Transport: chaostest.NewTransport(nil, chaostest.FaultConfig{
			Seed:         202,
			LatencyProb:  0.10,
			LatencyMin:   time.Millisecond,
			LatencyMax:   5 * time.Millisecond,
			ResetProb:    0.08,
			TruncateProb: 0.08,
			Err500Prob:   0.04,
			Err503Prob:   0.04,
		}),
	}
	c := client.NewWithRetry(base, chaosHTTP, policy)

	scenarios := trace.Scenarios()
	errs := make(chan error, workers*iters)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				var err error
				switch (w + i) % 4 {
				case 0:
					err = soakPlan(ctx, c, scenarios[i%len(scenarios)])
				case 1:
					err = soakBatch(ctx, c, scenarios)
				case 2:
					err = soakReplan(ctx, c, scenarios[0])
				default:
					err = soakFleet(ctx, c, fmt.Sprintf("soak-fleet-%d", w), uint64(i)+1, scenarios[0])
				}
				cancel()
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	failed := 0
	for err := range errs {
		failed++
		if failed <= 5 {
			t.Error(err)
		}
	}
	if failed > 0 {
		t.Fatalf("%d of %d idempotent requests never succeeded", failed, workers*iters)
	}

	// Drain the fleet through the chaos client: each surviving session
	// comes back exactly once, all from the soak's device namespace.
	// (A drain retried after a truncated response legitimately finds
	// the fleet already empty, so the count itself is not asserted.)
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 20*time.Second)
	drained, err := c.FleetDrain(drainCtx)
	drainCancel()
	if err != nil {
		t.Fatalf("fleet drain after soak: %v", err)
	}
	seen := make(map[string]bool)
	for _, d := range drained.Devices {
		if !strings.HasPrefix(d.DeviceID, "soak-fleet-") {
			t.Errorf("drained unexpected device %q", d.DeviceID)
		}
		if seen[d.DeviceID] {
			t.Errorf("device %q drained twice", d.DeviceID)
		}
		seen[d.DeviceID] = true
	}

	// The storm must not have perturbed the canonical plan bytes.
	if got := rawPlan(t, base); !bytes.Equal(got, golden) {
		t.Errorf("/v1/plan diverged from golden after soak:\n got: %s\nwant: %s", got, golden)
	}

	// Server-side admission families are on /metrics; the client's
	// breaker families render from its group.
	metricsBody := rawGet(t, base+"/metrics")
	for _, want := range []string{
		"dpmd_admission_admitted_total",
		"dpmd_admission_shed_total",
		"dpmd_admission_expired_total",
		"dpmd_admission_queue_depth",
		"dpmd_fleet_ticks_total",
		"dpmd_fleet_drained_sessions_total",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	var prom bytes.Buffer
	if err := c.Breakers().WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "dpmd_client_breaker_state{host=") {
		t.Errorf("breaker exposition missing state family:\n%s", prom.String())
	}

	// Drain and prove nothing outlived it.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	chaosHTTP.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	chaostest.CheckGoroutines(t, snap)
}

// soakPlan plans one scenario and sanity-checks the result shape.
func soakPlan(ctx context.Context, c *client.Client, s trace.Scenario) error {
	resp, _, err := c.Plan(ctx, server.PlanRequest{Scenario: s})
	if err != nil {
		return fmt.Errorf("plan: %w", err)
	}
	if len(resp.Allocation) == 0 || len(resp.Trajectory) != len(resp.Allocation)+1 {
		return fmt.Errorf("plan: malformed response %+v", resp)
	}
	return nil
}

// soakBatch plans every scenario in one call and checks per-item
// success.
func soakBatch(ctx context.Context, c *client.Client, scenarios []trace.Scenario) error {
	reqs := make([]server.PlanRequest, len(scenarios))
	for i, s := range scenarios {
		reqs[i] = server.PlanRequest{Scenario: s}
	}
	results, err := c.PlanBatch(ctx, reqs)
	if err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("batch item %d: %w", i, r.Err)
		}
		if r.Plan == nil || len(r.Plan.Allocation) == 0 {
			return fmt.Errorf("batch item %d: empty plan", i)
		}
	}
	return nil
}

// soakReplan round-trips a checkpoint through two replan calls — the
// Algorithm 3 loop a fleet node runs every slot.
func soakReplan(ctx context.Context, c *client.Client, s trace.Scenario) error {
	first, err := c.Replan(ctx, server.ReplanRequest{
		Scenario: s,
		Slots:    []server.SlotReport{{UsedJ: 9.5, SuppliedJ: 11.0}},
	})
	if err != nil {
		return fmt.Errorf("replan: %w", err)
	}
	second, err := c.Replan(ctx, server.ReplanRequest{
		Scenario: s,
		State:    &first.State,
		Slots:    []server.SlotReport{{UsedJ: 8.0, SuppliedJ: 10.0}},
	})
	if err != nil {
		return fmt.Errorf("replan resume: %w", err)
	}
	if second.Slot != first.Slot+1 {
		return fmt.Errorf("replan: slot %d after %d, want +1", second.Slot, first.Slot)
	}
	return nil
}

// soakFleet drives one worker's session: tick with a distinct seq; on
// 404 (never registered, or drained by a concurrent soak iteration)
// or 410 (idle-evicted) register — resuming any parked checkpoint —
// and tick again. Seq makes the tick safe under the retrying client:
// a retry whose original was applied is answered from session memory.
func soakFleet(ctx context.Context, c *client.Client, device string, seq uint64, s trace.Scenario) error {
	tick := server.FleetTickRequest{
		DeviceID: device,
		Seq:      seq,
		Slots:    []server.SlotReport{{UsedJ: 9.0, SuppliedJ: 10.5}},
	}
	if _, err := c.FleetTick(ctx, tick); err == nil {
		return nil
	} else {
		var se *client.StatusError
		if !errors.As(err, &se) || (se.Code != http.StatusNotFound && se.Code != http.StatusGone) {
			return fmt.Errorf("fleet tick: %w", err)
		}
	}
	if _, err := c.FleetRegister(ctx, server.FleetRegisterRequest{DeviceID: device, Scenario: s}); err != nil {
		return fmt.Errorf("fleet register: %w", err)
	}
	if _, err := c.FleetTick(ctx, tick); err != nil {
		return fmt.Errorf("fleet tick after register: %w", err)
	}
	return nil
}

// rawPlan fetches /v1/plan over a clean client and returns the exact
// body bytes.
func rawPlan(t *testing.T, base string) []byte {
	t.Helper()
	body := []byte(`{"scenario":` + scenarioIJSON(t) + `}`)
	resp, err := http.Post(base+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean /v1/plan status %d: %s", resp.StatusCode, data)
	}
	return data
}

// scenarioIJSON renders Scenario I in its wire form.
func scenarioIJSON(t *testing.T) string {
	t.Helper()
	data, err := json.Marshal(trace.ScenarioI())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// rawGet fetches a URL over a clean client.
func rawGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
