// Integration tests through the public facade: the flows a
// downstream user would write, plus cross-model consistency checks
// between the analytic simulator and the discrete-event board.
package dpm

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"dpm/internal/experiments"
	"dpm/internal/machine"
	"dpm/internal/params"
	"dpm/internal/trace"
)

func facadeConfig(t *testing.T) ManagerConfig {
	t.Helper()
	w, err := NewWorkload(4.8, 0.48)
	if err != nil {
		t.Fatal(err)
	}
	s := ScenarioI()
	return ManagerConfig{
		Charging:      s.Charging,
		EventRate:     s.Usage,
		CapacityMax:   s.CapacityMax,
		CapacityMin:   s.CapacityMin,
		InitialCharge: s.InitialCharge,
		Params: ParamsConfig{
			System:        PAMA(),
			Curve:         FixedVoltage(3.3, 80e6),
			Workload:      w,
			Frequencies:   []float64{20e6, 40e6, 80e6},
			MaxProcessors: 7,
		},
	}
}

func TestFacadeQuickstartFlow(t *testing.T) {
	mgr, err := NewManager(facadeConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if mgr.Slots() != 12 {
		t.Fatalf("Slots = %d", mgr.Slots())
	}
	tau := mgr.Tau()
	charging := ScenarioI().Charging
	for slot := 0; slot < mgr.Slots(); slot++ {
		point, overhead := mgr.BeginSlot()
		if point.N < 0 || point.N > 7 {
			t.Fatalf("slot %d: bad point %v", slot, point)
		}
		mgr.EndSlot(point.Power*tau+overhead, charging.Values[slot]*tau)
	}
	if mgr.Slot() != 12 {
		t.Fatalf("Slot = %d after one period", mgr.Slot())
	}
}

func TestFacadeSimulate(t *testing.T) {
	res, err := Simulate(SimConfig{Manager: facadeConfig(t), Periods: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 24 {
		t.Fatalf("records = %d", len(res.Records))
	}
	if res.Battery.Utilization <= 0.5 {
		t.Errorf("utilization = %g, expected the manager to spend most of the supply", res.Battery.Utilization)
	}
}

func TestFacadeAllocation(t *testing.T) {
	s := ScenarioII()
	res, err := ComputeAllocation(AllocInputs{
		Charging:      s.Charging,
		EventRate:     s.Usage,
		CapacityMax:   s.CapacityMax,
		CapacityMin:   s.CapacityMin,
		InitialCharge: s.InitialCharge,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Error("scenario II allocation must be feasible")
	}
}

func TestFacadeTableAndContinuous(t *testing.T) {
	cfg := facadeConfig(t).Params
	tbl, err := BuildTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() == 0 {
		t.Fatal("empty table")
	}
	pt, err := ContinuousParams(cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if pt.N < 1 {
		t.Errorf("continuous point %v", pt)
	}
}

func TestFacadeBatteryAndGrids(t *testing.T) {
	b, err := NewBattery(BatteryConfig{CapacityMax: 10, Initial: 5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Charge() != 5 {
		t.Errorf("charge = %g", b.Charge())
	}
	g := NewGrid(1, []float64{1, 2, 3})
	if g.Total() != 6 {
		t.Errorf("grid total = %g", g.Total())
	}
	if got := FromSchedule(g, 3); !got.Equal(g, 1e-9) {
		t.Errorf("FromSchedule round trip = %v", got.Values)
	}
}

// The analytic simulator and the discrete-event board must agree on
// the big picture: similar total energy use and battery trajectories
// within the band, for the same scenario and plan.
func TestAnalyticVsMachineConsistency(t *testing.T) {
	s := trace.ScenarioI()
	cfg := experiments.ManagerConfig(s)

	analytic, err := Simulate(SimConfig{Manager: cfg, Periods: 2, SyncCharge: true})
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.PoissonEvents(s.Usage, 0.1, 2*trace.Period, 17)
	if err != nil {
		t.Fatal(err)
	}
	board, err := machine.New(machine.Config{
		Manager:    cfg,
		Events:     events,
		Periods:    2,
		ExecuteDSP: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	mres, err := board.Run()
	if err != nil {
		t.Fatal(err)
	}

	// The machine's workers only run while tasks exist, so its draw is
	// bounded above by the analytic model's always-on-point draw; but
	// both track the same plan, so they must agree within 2×.
	if mres.EnergyUsed > analytic.Battery.TotalDrawn*1.1 {
		t.Errorf("machine used %g J, analytic delivered %g J — machine cannot exceed the plan",
			mres.EnergyUsed, analytic.Battery.TotalDrawn)
	}
	if mres.EnergyUsed < analytic.Battery.TotalDrawn*0.1 {
		t.Errorf("machine used %g J vs analytic %g J — far too idle", mres.EnergyUsed, analytic.Battery.TotalDrawn)
	}
	// Slot times align one-to-one.
	if len(mres.Records) != len(analytic.Records) {
		t.Fatalf("record counts %d vs %d", len(mres.Records), len(analytic.Records))
	}
	for i := range mres.Records {
		if math.Abs(mres.Records[i].Time-analytic.Records[i].Time) > 1e-9 {
			t.Fatalf("slot %d time mismatch", i)
		}
	}
}

func TestFacadeScenarioBuilder(t *testing.T) {
	s, err := NewScenarioBuilder("custom", 4.8, 12).
		OrbitCharging(0.5, 3.0).
		TwinPeakDemand(0.3, 2.0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := facadeConfig(t)
	cfg.Charging = s.Charging
	cfg.EventRate = s.Usage
	res, err := Simulate(SimConfig{Manager: cfg, Periods: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 24 {
		t.Fatalf("records = %d", len(res.Records))
	}
}

func TestFacadeScenarioJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	if err := SaveScenario(ScenarioI(), path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "I" {
		t.Errorf("loaded %q", got.Name)
	}
}

func TestFacadeVectorManager(t *testing.T) {
	m, err := NewVectorManager(facadeConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	vp, _, err := m.BeginSlotVector()
	if err != nil {
		t.Fatal(err)
	}
	if vp.N() < 0 {
		t.Errorf("assignment %v", vp)
	}
	res, err := SimulateVector(SimConfig{Manager: facadeConfig(t), Periods: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 12 {
		t.Fatalf("records = %d", len(res.Records))
	}
}

func TestFacadeHeteroSelect(t *testing.T) {
	cfg := facadeConfig(t).Params
	fleet, err := internalFleet()
	if err != nil {
		t.Fatal(err)
	}
	h, err := HeteroSelect(cfg, fleet, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Power > 1.5 && h.Active() > 0 {
		t.Errorf("budget exceeded: %+v", h)
	}
}

func TestFacadeAdaptiveAndCheckpoint(t *testing.T) {
	cfg := facadeConfig(t)
	res, err := SimulateAdaptive(AdaptiveConfig{
		Base:          cfg,
		ActualPeriods: []*Grid{ScenarioI().Charging, ScenarioI().Charging},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 24 {
		t.Fatalf("records = %d", len(res.Records))
	}

	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var state ManagerState = m.Checkpoint()
	if len(state.Plan) != 12 {
		t.Errorf("checkpoint plan slots = %d", len(state.Plan))
	}
}

// internalFleet builds a small uniform fleet through the facade types.
func internalFleet() (Fleet, error) {
	procs := make([]ProcessorModel, 4)
	base := PAMA().Proc
	for i := range procs {
		procs[i] = base
	}
	return params.NewFleet(procs, nil)
}

func TestFacadeHeteroManager(t *testing.T) {
	fleet, err := internalFleet()
	if err != nil {
		t.Fatal(err)
	}
	cfg := facadeConfig(t)
	cfg.Params.MaxProcessors = 4
	cfg.Params.System = SystemModel{Proc: PAMA().Proc, N: 4}
	m, err := NewHeteroManager(cfg, fleet)
	if err != nil {
		t.Fatal(err)
	}
	vp, _, err := m.BeginSlotVector()
	if err != nil {
		t.Fatal(err)
	}
	if vp.N() > 4 {
		t.Errorf("assignment uses %d of 4 processors", vp.N())
	}
}

// TestFacadeRejectsUnphysicalInputs mirrors the service fuzzer's
// 1e308 find at the library boundary: NaN, Inf and
// magnitude-overflow inputs must be rejected by validation, not
// propagated into the planner.
func TestFacadeRejectsUnphysicalInputs(t *testing.T) {
	for name, poison := range map[string]float64{
		"nan":      math.NaN(),
		"inf":      math.Inf(1),
		"overflow": 1e308,
	} {
		t.Run(name, func(t *testing.T) {
			cfg := facadeConfig(t)
			grid := *cfg.Charging
			grid.Values = append([]float64(nil), cfg.Charging.Values...)
			grid.Values[0] = poison
			cfg.Charging = &grid
			if _, err := NewManager(cfg); err == nil {
				t.Errorf("NewManager accepted charging value %g", poison)
			}
			if _, err := Simulate(SimConfig{Manager: cfg, Periods: 1}); err == nil {
				t.Errorf("Simulate accepted charging value %g", poison)
			}
			s := ScenarioI()
			s.Charging = &grid
			if err := ValidateScenario(s); err == nil {
				t.Errorf("ValidateScenario accepted charging value %g", poison)
			}
		})
	}
	cfg := facadeConfig(t)
	cfg.InitialCharge = math.Inf(1)
	if _, err := NewManager(cfg); err == nil {
		t.Error("NewManager accepted infinite initial charge")
	}
}

// TestPlannerStrategyFacade drives the pluggable-planner surface a
// downstream user sees: list the backends, plan with each, and run a
// manager seeded from a non-default plan through a full period.
func TestPlannerStrategyFacade(t *testing.T) {
	names := PlannerStrategies()
	if len(names) < 3 {
		t.Fatalf("registered strategies %v, want at least paper, yds, bunde", names)
	}
	s := ScenarioI()
	for _, name := range names {
		res, err := PlanWithStrategy(context.Background(), name, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Feasible {
			t.Errorf("%s plan infeasible on scenario I", name)
		}
	}
	mgr, err := NewManagerWithStrategy(context.Background(), "yds", s, experiments.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	want, err := PlanWithStrategy(context.Background(), "yds", s)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range mgr.PlanSnapshot() {
		if math.Abs(p-want.Allocation.Values[i]) > 1e-12 {
			t.Errorf("manager adopted plan[%d] = %g, yds planned %g", i, p, want.Allocation.Values[i])
		}
	}
	tau := s.Charging.Step
	for slot := 0; slot < mgr.Slots(); slot++ {
		point, _ := mgr.BeginSlot()
		mgr.EndSlot(point.Power*tau, s.Charging.Values[slot]*tau)
		if c := mgr.Charge(); c < s.CapacityMin-1e-9 || c > s.CapacityMax+1e-9 {
			t.Errorf("slot %d: charge %g J outside [%g, %g]", slot, c, s.CapacityMin, s.CapacityMax)
		}
	}

	if _, err := PlanWithStrategy(context.Background(), "vaporware", s); err == nil {
		t.Error("unknown strategy accepted")
	}
}
